#include "tuner/run_journal.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>

#include "obs/event.hpp"
#include "obs/scoped_timer.hpp"
#include "support/atomic_file.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "tuner/persistence.hpp"
#include "tuner/run_status.hpp"

namespace portatune::tuner {

namespace {

constexpr std::string_view kJournalMagic = "# portatune-journal v1,";
constexpr std::string_view kJournalHeader = "state,checksum,label";

std::string manifest_path(const std::string& run_dir) {
  return run_dir + "/journal.csv";
}

std::string cell_dir_name(std::size_t cell) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "cell-%03zu", cell);
  return buf;
}

void emit_cell_event(const char* name, std::size_t cell,
                     const std::string& label, const char* detail,
                     obs::Severity sev = obs::Severity::Info) {
  if (!obs::enabled(sev)) return;
  obs::emit(obs::make_instant(sev, name, "run",
                              {{"cell", static_cast<std::uint64_t>(cell)},
                               {"label", label},
                               {"detail", detail}}));
}

}  // namespace

const char* to_string(CellState s) noexcept {
  switch (s) {
    case CellState::Pending: return "pending";
    case CellState::Running: return "running";
    case CellState::Done: return "done";
  }
  return "?";
}

bool RunJournal::exists(const std::string& run_dir) {
  return file_exists(manifest_path(run_dir));
}

RunJournal RunJournal::create(std::string run_dir,
                              std::vector<std::string> labels) {
  PT_REQUIRE(!labels.empty(), "a journaled run needs at least one cell");
  if (exists(run_dir))
    throw Error("run directory '" + run_dir +
                "' already contains a journal — resume it instead of "
                "overwriting a resumable run");
  ensure_directory(run_dir);
  std::vector<Cell> cells(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    cells[i].label = std::move(labels[i]);
    ensure_directory(run_dir + "/" + cell_dir_name(i));
  }
  RunJournal journal(std::move(run_dir), std::move(cells));
  journal.write_manifest_locked();
  return journal;
}

std::vector<RunJournal::Cell> RunJournal::parse_manifest(
    const std::string& run_dir) {
  const std::string payload = strip_verified_checksum_footer(
      read_file(manifest_path(run_dir)), "journal");
  std::istringstream is(payload);
  std::string line;
  PT_REQUIRE(std::getline(is, line) && line.rfind(kJournalMagic, 0) == 0,
             "'" + run_dir + "/journal.csv' is not a portatune journal");
  std::size_t ncells = 0;
  try {
    ncells = std::stoul(line.substr(kJournalMagic.size()));
  } catch (const std::exception&) {
    throw Error("journal magic line has a malformed cell count: " + line);
  }
  PT_REQUIRE(std::getline(is, line) && line == kJournalHeader,
             "journal header row is missing or malformed");

  std::vector<Cell> cells;
  cells.reserve(ncells);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto c1 = line.find(',');
    const auto c2 = c1 == std::string::npos ? std::string::npos
                                            : line.find(',', c1 + 1);
    PT_REQUIRE(c2 != std::string::npos,
               "malformed journal row: " + line);
    Cell cell;
    const std::string state = line.substr(0, c1);
    if (state == "pending") cell.state = CellState::Pending;
    else if (state == "running") cell.state = CellState::Running;
    else if (state == "done") cell.state = CellState::Done;
    else throw Error("unknown journal cell state '" + state + "'");
    const std::string hex = line.substr(c1 + 1, c2 - c1 - 1);
    PT_REQUIRE(hex.size() == 16, "malformed journal checksum: " + line);
    cell.checksum = std::stoull(hex, nullptr, 16);
    cell.label = line.substr(c2 + 1);  // labels may themselves hold commas
    cells.push_back(std::move(cell));
  }
  PT_REQUIRE(cells.size() == ncells,
             "journal row count does not match its declared cell count");
  return cells;
}

RunJournal::Peek RunJournal::peek(const std::string& run_dir) {
  Peek out;
  for (Cell& cell : parse_manifest(run_dir)) {
    out.states.push_back(cell.state);
    out.labels.push_back(std::move(cell.label));
  }
  return out;
}

RunJournal RunJournal::open(std::string run_dir,
                            std::vector<std::string> labels) {
  std::vector<Cell> cells = parse_manifest(run_dir);
  PT_REQUIRE(cells.size() == labels.size(),
             "journal has " + std::to_string(cells.size()) +
                 " cells but the job list has " +
                 std::to_string(labels.size()) +
                 " — resume must use the same jobs");
  for (std::size_t i = 0; i < cells.size(); ++i)
    PT_REQUIRE(cells[i].label == labels[i],
               "journal cell " + std::to_string(i) + " is '" +
                   cells[i].label + "' but the job list says '" + labels[i] +
                   "' — resume must use the same jobs in the same order");

  RunJournal journal(std::move(run_dir), std::move(cells));
  // Crash recovery: a `running` row is a cell the dying process never
  // finished; a `done` row whose artifact bundle no longer matches its
  // recorded checksum cannot be trusted. Both demote to pending (their
  // intact phase files are still picked up by the restore hooks).
  for (std::size_t i = 0; i < journal.cells_.size(); ++i) {
    Cell& cell = journal.cells_[i];
    if (cell.state == CellState::Running) {
      emit_cell_event("run.cell_demoted", i, cell.label,
                      "interrupted mid-cell", obs::Severity::Warn);
      cell.state = CellState::Pending;
      cell.checksum = 0;
    } else if (cell.state == CellState::Done) {
      bool ok = false;
      try {
        ok = journal.cell_bundle_checksum(i) == cell.checksum;
      } catch (const Error&) {
        ok = false;  // a phase file is missing or unreadable
      }
      if (!ok) {
        emit_cell_event("run.cell_demoted", i, cell.label,
                        "artifact bundle failed verification",
                        obs::Severity::Warn);
        cell.state = CellState::Pending;
        cell.checksum = 0;
      }
    }
    ensure_directory(journal.run_dir_ + "/" + cell_dir_name(i));
  }
  journal.write_manifest_locked();
  return journal;
}

CellState RunJournal::state(std::size_t cell) const {
  std::lock_guard lock(*mutex_);
  return cells_.at(cell).state;
}

const std::string& RunJournal::label(std::size_t cell) const {
  return cells_.at(cell).label;  // immutable after construction
}

std::string RunJournal::cell_dir(std::size_t cell) const {
  return run_dir_ + "/" + cell_dir_name(cell);
}

std::string RunJournal::phase_path(std::size_t cell,
                                   const std::string& phase) const {
  return cell_dir(cell) + "/" + phase + ".csv";
}

std::string RunJournal::partial_rs_path(std::size_t cell) const {
  return cell_dir(cell) + "/source_rs.partial.csv";
}

void RunJournal::mark_running(std::size_t cell) {
  set_state(cell, CellState::Running, 0);
}

void RunJournal::mark_done(std::size_t cell, std::uint64_t bundle_checksum) {
  set_state(cell, CellState::Done, bundle_checksum);
  std::error_code ec;
  std::filesystem::remove(partial_rs_path(cell), ec);
}

void RunJournal::mark_pending(std::size_t cell) {
  set_state(cell, CellState::Pending, 0);
}

void RunJournal::set_state(std::size_t cell, CellState state,
                           std::uint64_t checksum) {
  {
    std::lock_guard lock(*mutex_);
    cells_.at(cell).state = state;
    cells_.at(cell).checksum = checksum;
    write_manifest_locked();
  }
  emit_cell_event("run.cell_state", cell, cells_[cell].label,
                  to_string(state));
}

void RunJournal::write_manifest_locked() const {
  std::ostringstream os;
  os << kJournalMagic << cells_.size() << "\n" << kJournalHeader << "\n";
  for (const Cell& cell : cells_)
    os << to_string(cell.state) << ',' << hex16(cell.checksum) << ','
       << cell.label << "\n";
  atomic_write_file(manifest_path(run_dir_),
                    append_checksum_footer(os.str()));
}

std::uint64_t RunJournal::cell_bundle_checksum(std::size_t cell) const {
  std::uint64_t h = 0x706f727461747556ULL;  // arbitrary fixed chain seed
  for (const char* phase : kExperimentPhases)
    h = hash_combine(h, hash_bytes(read_file(phase_path(cell, phase))));
  return h;
}

std::vector<TransferExperimentResult> run_transfer_experiments_journaled(
    std::span<const ExperimentJob> jobs, const JournaledRunOptions& opt,
    JournaledRunSummary* summary) {
  PT_REQUIRE(!opt.run_dir.empty(), "a journaled run needs a run directory");
  if (jobs.empty()) {
    if (summary != nullptr) *summary = {};
    return {};
  }
  std::vector<std::string> labels;
  labels.reserve(jobs.size());
  for (const ExperimentJob& job : jobs) labels.push_back(job.label);
  RunJournal journal = opt.resume
                           ? RunJournal::open(opt.run_dir, std::move(labels))
                           : RunJournal::create(opt.run_dir,
                                                std::move(labels));

  std::vector<TransferExperimentResult> out(jobs.size());
  std::atomic<bool> interrupted{false};
  std::atomic<std::size_t> completed{0};
  std::size_t restored = 0;
  for (std::size_t i = 0; i < journal.size(); ++i)
    if (journal.state(i) == CellState::Done) ++restored;

  // Live status telemetry (run_status.hpp): a shared progress board the
  // phase hooks update, and a heartbeat thread rendering it into
  // status.json. Entirely absent when status_every_seconds == 0.
  std::unique_ptr<RunStatusBoard> board;
  std::unique_ptr<RunStatusWriter> status_writer;
  if (opt.status_every_seconds > 0.0) {
    std::vector<std::string> board_labels;
    board_labels.reserve(jobs.size());
    for (const ExperimentJob& job : jobs) board_labels.push_back(job.label);
    // Budget per cell: six searches, each capped at the cell's nmax. The
    // grid shares one nmax in practice; a heterogeneous grid only skews
    // the ETA, never correctness.
    board = std::make_unique<RunStatusBoard>(
        std::move(board_labels),
        kNumExperimentPhases * jobs.front().settings.nmax);
    for (std::size_t i = 0; i < journal.size(); ++i)
      if (journal.state(i) == CellState::Done)
        board->set_state(i, CellState::Done);
    status_writer = std::make_unique<RunStatusWriter>(
        *board, opt.run_dir, opt.status_every_seconds);
  }
  RunStatusBoard* const bp = board.get();

  const auto run_job = [&](std::size_t i) {
    const ExperimentJob& job = jobs[i];
    PT_REQUIRE(job.make_source && job.make_target,
               "experiment job '" + job.label + "' is missing a factory");
    obs::ScopedTimer cell_span("experiment.cell", "experiment",
                               {{"label", job.label},
                                {"cell", static_cast<std::uint64_t>(i)}});
    if (journal.state(i) == CellState::Done) {
      // Restore: load the six verified phase artifacts and recompute the
      // derived metrics — a pure function of the traces, so the restored
      // result matches what the original run reported.
      EvaluatorPtr source = job.make_source();
      const ParamSpace& space = source->space();
      TransferExperimentResult r;
      SearchTrace* slots[kNumExperimentPhases] = {
          &r.source_rs, &r.target_rs, &r.pruned,
          &r.biased,    &r.pruned_mf, &r.biased_mf};
      for (std::size_t p = 0; p < kNumExperimentPhases; ++p)
        *slots[p] =
            load_checkpoint_csv(journal.phase_path(i, kExperimentPhases[p]),
                                space)
                .trace;
      if (bp != nullptr) {
        // Credit the restored work to the board so the run-wide eval
        // count and ETA don't treat the cell as still outstanding.
        for (std::size_t p = 0; p < kNumExperimentPhases; ++p)
          bp->phase_finished(i, slots[p]->size(), slots[p]->best_seconds());
        bp->set_state(i, CellState::Done);
      }
      finalize_transfer_result(r);
      out[i] = std::move(r);
      return;
    }
    if (opt.cancel.cancelled()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    journal.mark_running(i);
    if (bp != nullptr) bp->set_state(i, CellState::Running);
    EvaluatorPtr source = job.make_source();
    EvaluatorPtr target = job.make_target();
    const ParamSpace& space = source->space();

    ExperimentSettings settings = job.settings;
    settings.cancel = opt.cancel;
    settings.hooks.restore_phase =
        [&journal, &space, i, bp](const std::string& phase)
        -> std::optional<SearchTrace> {
      // restore_phase fires at every phase boundary, restored or not —
      // which makes it the board's "phase started" signal too.
      if (bp != nullptr) bp->phase_started(i, phase);
      const std::string path = journal.phase_path(i, phase);
      if (!file_exists(path)) return std::nullopt;
      SearchTrace trace = load_checkpoint_csv(path, space).trace;
      if (bp != nullptr)
        bp->phase_finished(i, trace.size(), trace.best_seconds());
      return trace;
    };
    settings.hooks.phase_done = [&journal, &space, i, bp](
                                    const std::string& phase,
                                    const SearchTrace& trace) {
      SearchCheckpoint snap;
      snap.trace = trace;
      snap.draws = trace.size();  // never resumed; recorded for the format
      save_checkpoint_csv(journal.phase_path(i, phase), snap, space);
      if (bp != nullptr)
        bp->phase_finished(i, trace.size(), trace.best_seconds());
    };
    settings.hooks.rs_checkpoint_every = opt.rs_checkpoint_every;
    settings.hooks.rs_checkpoint = [&journal, &space, i,
                                    bp](const SearchCheckpoint& snap) {
      save_checkpoint_csv(journal.partial_rs_path(i), snap, space);
      if (bp != nullptr)
        bp->rs_progress(i, snap.trace.size(), snap.trace.best_seconds());
    };
    settings.hooks.rs_resume = [&journal, &space,
                                i]() -> std::optional<SearchCheckpoint> {
      const std::string path = journal.partial_rs_path(i);
      if (!file_exists(path)) return std::nullopt;
      return load_checkpoint_csv(path, space);
    };

    out[i] = run_transfer_experiment(*source, *target, settings);
    if (out[i].interrupted) {
      // Leave the row `running`: open() demotes it to pending and the
      // phase files written so far are restored on resume.
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    journal.mark_done(i, journal.cell_bundle_checksum(i));
    if (bp != nullptr) bp->set_state(i, CellState::Done);
    completed.fetch_add(1, std::memory_order_relaxed);
  };

  std::size_t threads = opt.threads;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, jobs.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
  } else {
    // Dedicated pool for the same reason as run_transfer_experiments:
    // cells are long-running and would starve the global pool's
    // fine-grained fan-outs.
    ThreadPool pool(threads);
    pool.parallel_for(0, jobs.size(), run_job);
  }

  if (summary != nullptr) {
    summary->cells_total = jobs.size();
    summary->cells_restored = restored;
    summary->cells_completed = completed.load();
    summary->interrupted = interrupted.load();
  }
  return out;
}

}  // namespace portatune::tuner
