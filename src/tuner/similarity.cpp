#include "tuner/similarity.hpp"

#include <cmath>

#include "support/correlation.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "tuner/sampler.hpp"

namespace portatune::tuner {

SimilarityReport measure_similarity(Evaluator& source, Evaluator& target,
                                    const SimilarityOptions& opt) {
  PT_REQUIRE(opt.probes >= 3, "need at least three probes");
  SimilarityReport report;

  ConfigStream stream(source.space(), opt.seed);
  std::vector<double> ya, yb;
  // Draw until `probes` configurations succeed on both machines (capped).
  std::size_t attempts = 0;
  while (ya.size() < opt.probes && attempts < opt.probes * 50) {
    ++attempts;
    auto c = stream.next();
    if (!c) break;
    const auto ra = source.evaluate(*c);
    if (!ra.ok) continue;
    const auto rb = target.evaluate(*c);
    if (!rb.ok) continue;
    ya.push_back(ra.seconds);
    yb.push_back(rb.seconds);
  }
  PT_REQUIRE(ya.size() >= 3, "probe set too small (evaluations failing?)");

  report.probes = ya.size();
  report.pearson = pearson(ya, yb);
  report.spearman = spearman(ya, yb);
  report.kendall = kendall(ya, yb);
  report.top_overlap = top_set_overlap(ya, yb, opt.top_fraction);

  std::vector<double> log_ratio;
  log_ratio.reserve(ya.size());
  for (std::size_t i = 0; i < ya.size(); ++i)
    log_ratio.push_back(std::log(yb[i] / ya[i]));
  const double m = mean(log_ratio);
  double disp = 0.0;
  for (double v : log_ratio) disp += std::abs(v - m);
  report.log_ratio_dispersion = disp / static_cast<double>(log_ratio.size());
  return report;
}

std::string to_string(TransferAdvice advice) {
  switch (advice) {
    case TransferAdvice::Transfer:
      return "transfer";
    case TransferAdvice::TransferTopOnly:
      return "transfer (top-set only)";
    case TransferAdvice::DoNotTransfer:
      return "do not transfer";
  }
  return "?";
}

TransferAdvice advise(const SimilarityReport& report) {
  // Calibrated against the reproduction's Table IV outcomes: every
  // successful RS_b cell has probe spearman > 0.45 or top-set overlap
  // >= 0.4; the X-Gene failures sit below both.
  if (report.spearman > 0.45) return TransferAdvice::Transfer;
  if (report.top_overlap >= 0.4) return TransferAdvice::TransferTopOnly;
  return TransferAdvice::DoNotTransfer;
}

}  // namespace portatune::tuner
