#include "tuner/similarity.hpp"

#include <cmath>

#include "support/correlation.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "tuner/sampler.hpp"

namespace portatune::tuner {

std::vector<ParamConfig> probe_configs(const ParamSpace& space,
                                       std::size_t count,
                                       std::uint64_t seed) {
  ConfigStream stream(space, seed);
  std::vector<ParamConfig> out;
  out.reserve(count);
  while (out.size() < count) {
    auto c = stream.next();
    if (!c) break;
    out.push_back(std::move(*c));
  }
  return out;
}

SimilarityReport summarize_probe_vectors(std::span<const double> a,
                                         std::span<const double> b,
                                         double top_fraction) {
  PT_REQUIRE(a.size() == b.size(), "probe vectors are not aligned");
  PT_REQUIRE(a.size() >= 3, "probe set too small (evaluations failing?)");
  const std::vector<double> ya(a.begin(), a.end());
  const std::vector<double> yb(b.begin(), b.end());

  SimilarityReport report;
  report.probes = ya.size();
  report.pearson = pearson(ya, yb);
  report.spearman = spearman(ya, yb);
  report.kendall = kendall(ya, yb);
  report.top_overlap = top_set_overlap(ya, yb, top_fraction);

  std::vector<double> log_ratio;
  log_ratio.reserve(ya.size());
  for (std::size_t i = 0; i < ya.size(); ++i)
    log_ratio.push_back(std::log(yb[i] / ya[i]));
  const double m = mean(log_ratio);
  double disp = 0.0;
  for (double v : log_ratio) disp += std::abs(v - m);
  report.log_ratio_dispersion = disp / static_cast<double>(log_ratio.size());
  return report;
}

SimilarityReport measure_similarity(Evaluator& source, Evaluator& target,
                                    const SimilarityOptions& opt) {
  PT_REQUIRE(opt.probes >= 3, "need at least three probes");

  ConfigStream stream(source.space(), opt.seed);
  std::vector<double> ya, yb;
  // Draw until `probes` configurations succeed on both machines (capped).
  std::size_t attempts = 0;
  while (ya.size() < opt.probes && attempts < opt.probes * 50) {
    ++attempts;
    auto c = stream.next();
    if (!c) break;
    const auto ra = source.evaluate(*c);
    if (!ra.ok) continue;
    const auto rb = target.evaluate(*c);
    if (!rb.ok) continue;
    ya.push_back(ra.seconds);
    yb.push_back(rb.seconds);
  }
  return summarize_probe_vectors(ya, yb, opt.top_fraction);
}

std::string to_string(TransferAdvice advice) {
  switch (advice) {
    case TransferAdvice::Transfer:
      return "transfer";
    case TransferAdvice::TransferTopOnly:
      return "transfer (top-set only)";
    case TransferAdvice::DoNotTransfer:
      return "do not transfer";
  }
  return "?";
}

TransferAdvice advise(const SimilarityReport& report) {
  // Calibrated against the reproduction's Table IV outcomes: every
  // successful RS_b cell has probe spearman > 0.45 or top-set overlap
  // >= 0.4; the X-Gene failures sit below both.
  if (report.spearman > 0.45) return TransferAdvice::Transfer;
  if (report.top_overlap >= 0.4) return TransferAdvice::TransferTopOnly;
  return TransferAdvice::DoNotTransfer;
}

}  // namespace portatune::tuner
