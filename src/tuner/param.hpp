// Tuning parameter space.
//
// The feasible set D of the paper: a Cartesian product of ordered discrete
// parameters (unroll factors, power-of-two tile sizes, binary flags, ...).
// A configuration x is stored as a vector of *value indices*; the feature
// encoding used by the surrogate model maps indices to the actual values
// (so e.g. cache tiles enter the model as 1..2048, not 0..11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace portatune::tuner {

/// A configuration: one value index per parameter.
using ParamConfig = std::vector<int>;

/// One tunable parameter with its ordered set of allowed values.
struct ParamDef {
  std::string name;
  std::vector<double> values;
};

/// Ordered integer values lo..hi inclusive.
std::vector<double> range_values(int lo, int hi);
/// Powers of two 2^lo_exp .. 2^hi_exp inclusive.
std::vector<double> pow2_values(int lo_exp, int hi_exp);
/// Binary flag {0, 1}.
std::vector<double> flag_values();

class ParamSpace {
 public:
  ParamSpace() = default;

  /// Append a parameter; returns its index.
  std::size_t add(std::string name, std::vector<double> values);

  std::size_t num_params() const noexcept { return params_.size(); }
  const ParamDef& param(std::size_t i) const { return params_.at(i); }
  const std::vector<ParamDef>& params() const noexcept { return params_; }

  /// |D| as a double (spaces here reach 1e12).
  double cardinality() const;

  /// Parameter names, in order (feature names for the surrogate).
  std::vector<std::string> names() const;

  /// The configuration with every parameter at its first value — by
  /// convention the untransformed default.
  ParamConfig default_config() const;

  /// Uniform random configuration.
  ParamConfig random_config(Rng& rng) const;

  /// Value of parameter `p` under configuration `c`.
  double value(const ParamConfig& c, std::size_t p) const;
  /// Value looked up by parameter name (throws if absent).
  double value(const ParamConfig& c, const std::string& name) const;
  /// Index of the named parameter (throws if absent).
  std::size_t index_of(const std::string& name) const;

  /// Feature vector (actual values) for the surrogate model.
  std::vector<double> features(const ParamConfig& c) const;

  /// Stable 64-bit hash of a configuration (noise keys, dedup sets).
  std::uint64_t config_hash(const ParamConfig& c) const;

  /// Throws portatune::Error unless `c` is well-formed for this space.
  void validate(const ParamConfig& c) const;

  /// All configurations reachable by stepping one parameter one index up
  /// or down (pattern-search / local-search neighborhood).
  std::vector<ParamConfig> neighbors(const ParamConfig& c) const;

  /// Human-readable "name=value, ..." rendering.
  std::string describe(const ParamConfig& c) const;

 private:
  std::vector<ParamDef> params_;
};

}  // namespace portatune::tuner
