// The full cross-machine transfer experiment protocol (Sec. IV-D).
//
// Given a problem instantiated on a source machine gamma_a and a target
// machine gamma_b:
//   1. run RS on gamma_a                            -> T_a
//   2. replay the same draw order with RS on gamma_b (common random
//      numbers) -> the reference trace,
//   3. fit the random-forest surrogate M_a on T_a,
//   4. run RS_p and RS_b on gamma_b guided by M_a,
//   5. run the model-free controls RS_pf and RS_bf,
//   6. compute correlations (Fig. 1 / third columns of Figs. 3-5) and the
//      speedups of Table IV/V.
#pragma once

#include <functional>
#include <span>

#include "ml/forest.hpp"
#include "obs/metrics.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/guard.hpp"
#include "tuner/metrics.hpp"
#include "tuner/resilience.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

struct ExperimentSettings {
  std::size_t nmax = 100;        ///< evaluation budget per search
  std::size_t pool_size = 10000; ///< N
  double delta_percent = 20.0;   ///< RS_p cutoff quantile
  std::uint64_t seed = 20160401; ///< shared CRN seed
  ml::ForestParams forest{};     ///< surrogate hyperparameters
  /// Per-search bound on failed evaluations (see resilience.hpp); a
  /// persistently failing machine aborts its search with a diagnostic
  /// instead of draining the configuration pool.
  FailureBudget failure_budget{};
  /// Surrogate-trust guard applied to RS_p / RS_b (tuner/guard.hpp).
  /// The engine wires refit_source to T_a itself, refits with the cell's
  /// forest hyperparameters, and captures the guard timelines on the
  /// result's guard_log; refit_source, refit_forest, and on_transition
  /// set here are overridden.
  GuardOptions guard{};
};

struct TransferExperimentResult {
  SearchTrace source_rs;   ///< RS on gamma_a (this is T_a)
  SearchTrace target_rs;   ///< RS on gamma_b (CRN replay of the same order)
  SearchTrace pruned;      ///< RS_p on gamma_b
  SearchTrace biased;      ///< RS_b on gamma_b
  SearchTrace pruned_mf;   ///< RS_pf on gamma_b
  SearchTrace biased_mf;   ///< RS_bf on gamma_b

  Speedups pruned_speedup, biased_speedup;
  Speedups pruned_mf_speedup, biased_mf_speedup;

  /// Correlation of the shared RS configurations' run times on the two
  /// machines (rho_p, rho_s) and the top-20 % set overlap.
  double pearson = 0.0;
  double spearman = 0.0;
  double top_overlap = 0.0;

  /// Failure accounting summed over all six traces (attempts, failures by
  /// kind, retry/backoff overhead). Per-trace detail is available from
  /// each trace's failure_stats().
  FailureStats failures;
  /// Searches that aborted on their failure budget, as
  /// "algorithm: reason" diagnostics (empty in a healthy run).
  std::vector<std::string> aborted_searches;

  /// Guard state transitions of the guarded searches, in firing order, as
  /// "algorithm: from->to @evals (reason, trust=x)" lines (empty when the
  /// guard is off or never fired).
  std::vector<std::string> guard_log;

  /// Observability snapshot taken when the experiment finished: every
  /// counter/gauge/histogram of the active metrics registry (model-fit
  /// cost, prune rates, cache traffic, per-evaluation latency, ...), so
  /// each experiment report carries its own telemetry.
  obs::MetricsSnapshot metrics;
};

/// Run the full protocol. `source` and `target` must expose identical
/// parameter spaces (the paper's fixed-D assumption); this is enforced.
TransferExperimentResult run_transfer_experiment(
    Evaluator& source, Evaluator& target, const ExperimentSettings& settings);

/// One independent cell of a Table IV/V-style experiment grid.
///
/// The factories run on the worker thread that executes the job, so every
/// job owns a private evaluator stack for its whole lifetime — nothing is
/// shared between concurrent cells except the process-wide metrics
/// registry (whose instruments are atomic and whose snapshots therefore
/// aggregate all in-flight cells). Jobs must NOT install per-job
/// ScopedMetricsRedirects: the current-registry pointer is process-global,
/// and concurrent redirects would clobber each other.
struct ExperimentJob {
  std::function<EvaluatorPtr()> make_source;
  std::function<EvaluatorPtr()> make_target;
  ExperimentSettings settings;
  std::string label;  ///< diagnostic tag, e.g. "MM idataplex->e5"
};

/// Run every job, fanning independent cells over `threads` workers
/// (0 = hardware concurrency). Results come back in job order regardless
/// of completion order; each result is bit-identical to what a serial
/// run_transfer_experiment of the same job would produce (searches are
/// seed-deterministic and jobs share no mutable search state).
/// `threads == 1` runs the jobs inline on the calling thread.
std::vector<TransferExperimentResult> run_transfer_experiments(
    std::span<const ExperimentJob> jobs, std::size_t threads = 0);

/// Run only RS on one machine (used to gather T_a once and reuse it).
SearchTrace run_reference_rs(Evaluator& eval,
                             const ExperimentSettings& settings);

}  // namespace portatune::tuner
