// The full cross-machine transfer experiment protocol (Sec. IV-D).
//
// Given a problem instantiated on a source machine gamma_a and a target
// machine gamma_b:
//   1. run RS on gamma_a                            -> T_a
//   2. replay the same draw order with RS on gamma_b (common random
//      numbers) -> the reference trace,
//   3. fit the random-forest surrogate M_a on T_a,
//   4. run RS_p and RS_b on gamma_b guided by M_a,
//   5. run the model-free controls RS_pf and RS_bf,
//   6. compute correlations (Fig. 1 / third columns of Figs. 3-5) and the
//      speedups of Table IV/V.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>

#include "ml/forest.hpp"
#include "obs/metrics.hpp"
#include "support/cancellation.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/guard.hpp"
#include "tuner/metrics.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

/// Persistence hooks for crash-safe experiments (tuner/run_journal.hpp).
/// The engine runs its searches as named phases — "source_rs",
/// "target_rs", "pruned", "biased", "pruned_mf", "biased_mf" — and calls
/// these hooks at phase boundaries. All hooks are optional; the default
/// (empty) hooks reproduce the unjournaled behaviour exactly.
struct ExperimentHooks {
  /// Called before a phase runs. Returning a trace skips the phase and
  /// uses the restored trace instead (its guard transitions are not
  /// replayed onto guard_log — they were logged by the original run).
  std::function<std::optional<SearchTrace>(const std::string& phase)>
      restore_phase;
  /// Called after a phase completes normally (not when it was restored,
  /// cancelled, or skipped). The hook owns persistence.
  std::function<void(const std::string& phase, const SearchTrace& trace)>
      phase_done;
  /// Periodic checkpointing of the long source RS phase (0 disables);
  /// forwarded to RandomSearchOptions::{checkpoint_every, on_checkpoint}.
  std::size_t rs_checkpoint_every = 0;
  std::function<void(const SearchCheckpoint&)> rs_checkpoint;
  /// Consulted once when the source_rs phase starts (and was not restored
  /// whole): a returned snapshot resumes the partial search.
  std::function<std::optional<SearchCheckpoint>()> rs_resume;
};

struct ExperimentSettings {
  std::size_t nmax = 100;        ///< evaluation budget per search
  std::size_t pool_size = 10000; ///< N
  double delta_percent = 20.0;   ///< RS_p cutoff quantile
  std::uint64_t seed = 20160401; ///< shared CRN seed
  ml::ForestParams forest{};     ///< surrogate hyperparameters
  /// Per-search bound on failed evaluations (see resilience.hpp); a
  /// persistently failing machine aborts its search with a diagnostic
  /// instead of draining the configuration pool.
  FailureBudget failure_budget{};
  /// Surrogate-trust guard applied to RS_p / RS_b (tuner/guard.hpp).
  /// The engine wires refit_source to T_a itself, refits with the cell's
  /// forest hyperparameters, and captures the guard timelines on the
  /// result's guard_log; refit_source, refit_forest, and on_transition
  /// set here are overridden.
  GuardOptions guard{};
  /// Cooperative cancellation, threaded into every phase's search. Once
  /// cancelled the experiment stops at the next phase/window boundary
  /// with result.interrupted = true (see TransferExperimentResult).
  CancellationToken cancel{};
  /// Crash-safety hooks (empty = plain in-memory run).
  ExperimentHooks hooks{};
};

struct TransferExperimentResult {
  SearchTrace source_rs;   ///< RS on gamma_a (this is T_a)
  SearchTrace target_rs;   ///< RS on gamma_b (CRN replay of the same order)
  SearchTrace pruned;      ///< RS_p on gamma_b
  SearchTrace biased;      ///< RS_b on gamma_b
  SearchTrace pruned_mf;   ///< RS_pf on gamma_b
  SearchTrace biased_mf;   ///< RS_bf on gamma_b

  Speedups pruned_speedup, biased_speedup;
  Speedups pruned_mf_speedup, biased_mf_speedup;

  /// Correlation of the shared RS configurations' run times on the two
  /// machines (rho_p, rho_s) and the top-20 % set overlap.
  double pearson = 0.0;
  double spearman = 0.0;
  double top_overlap = 0.0;

  /// Failure accounting summed over all six traces (attempts, failures by
  /// kind, retry/backoff overhead). Per-trace detail is available from
  /// each trace's failure_stats().
  FailureStats failures;
  /// Searches that aborted on their failure budget, as
  /// "algorithm: reason" diagnostics (empty in a healthy run).
  std::vector<std::string> aborted_searches;

  /// Guard state transitions of the guarded searches, in firing order, as
  /// "algorithm: from->to @evals (reason, trust=x)" lines (empty when the
  /// guard is off or never fired).
  std::vector<std::string> guard_log;

  /// Observability snapshot taken when the experiment finished: every
  /// counter/gauge/histogram of the active metrics registry (model-fit
  /// cost, prune rates, cache traffic, per-evaluation latency, ...), so
  /// each experiment report carries its own telemetry.
  obs::MetricsSnapshot metrics;

  /// True when the experiment was stopped by cooperative cancellation
  /// before all six phases finished. The traces up to (and including) the
  /// partially-run phase are populated; the derived metrics above are NOT
  /// computed — resume the run and let finalize_transfer_result() produce
  /// them once every phase is complete.
  bool interrupted = false;
};

/// Run the full protocol. `source` and `target` must expose identical
/// parameter spaces (the paper's fixed-D assumption); this is enforced.
TransferExperimentResult run_transfer_experiment(
    Evaluator& source, Evaluator& target, const ExperimentSettings& settings);

/// Steps 6-8 of the protocol: compute the speedups, the cross-machine
/// correlations, and the failure accounting from the six traces already
/// on `out`, and attach the current metrics snapshot. Pure function of the
/// traces (plus the process-wide registry), so a journal-restored cell
/// recomputes exactly what the uninterrupted run would have reported.
void finalize_transfer_result(TransferExperimentResult& out);

/// One independent cell of a Table IV/V-style experiment grid.
///
/// The factories run on the worker thread that executes the job, so every
/// job owns a private evaluator stack for its whole lifetime — nothing is
/// shared between concurrent cells except the process-wide metrics
/// registry (whose instruments are atomic and whose snapshots therefore
/// aggregate all in-flight cells). Jobs must NOT install per-job
/// ScopedMetricsRedirects: the current-registry pointer is process-global,
/// and concurrent redirects would clobber each other.
struct ExperimentJob {
  std::function<EvaluatorPtr()> make_source;
  std::function<EvaluatorPtr()> make_target;
  ExperimentSettings settings;
  std::string label;  ///< diagnostic tag, e.g. "MM idataplex->e5"
};

/// Run every job, fanning independent cells over `threads` workers
/// (0 = hardware concurrency). Results come back in job order regardless
/// of completion order; each result is bit-identical to what a serial
/// run_transfer_experiment of the same job would produce (searches are
/// seed-deterministic and jobs share no mutable search state).
/// `threads == 1` runs the jobs inline on the calling thread.
std::vector<TransferExperimentResult> run_transfer_experiments(
    std::span<const ExperimentJob> jobs, std::size_t threads = 0);

/// Run only RS on one machine (used to gather T_a once and reuse it).
SearchTrace run_reference_rs(Evaluator& eval,
                             const ExperimentSettings& settings);

}  // namespace portatune::tuner
