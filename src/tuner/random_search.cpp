#include "tuner/random_search.hpp"

#include <algorithm>

#include <optional>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "tuner/observe.hpp"
#include "tuner/sampler.hpp"

namespace portatune::tuner {

namespace {

/// Account a result on trace + budget. Returns true when the search must
/// abort (budget newly exhausted); records the diagnostic on the trace.
bool abort_on_failure(SearchTrace& trace, FailureBudgetTracker& budget,
                      const EvalResult& r) {
  trace.note_result(r);
  if (!budget.note(r)) return false;
  trace.set_stop_reason(budget.reason());
  return true;
}

/// Evaluation window width for the batched search loops. A plain
/// evaluator advertises width 1, which collapses every window to a single
/// draw and reproduces the historical serial loops instruction for
/// instruction; a ParallelEvaluator widens the window to keep its pool
/// busy. Trace parity holds either way because windows are always
/// processed in draw order.
std::size_t batch_width(const Evaluator& eval) {
  return std::max<std::size_t>(1, eval.capabilities().preferred_batch);
}

/// Evaluate one search window under a "search.window" span: the causal
/// parent of every evaluation it fans out, across worker threads (the
/// ThreadPool carries the SpanContext into each task). `evals_done` is
/// the trace size going in, so a trace viewer can line windows up with
/// search progress. Dormant path: one enabled() check, no allocation.
std::vector<EvalResult> evaluate_window(Evaluator& eval,
                                        std::span<const ParamConfig> configs,
                                        std::size_t evals_done) {
  std::optional<obs::ScopedTimer> span;
  if (obs::enabled(obs::Severity::Debug))
    span.emplace("search.window", "search",
                 std::vector<obs::Field>{{"window", configs.size()},
                                         {"evals_done", evals_done}},
                 nullptr, obs::Severity::Debug);
  return eval.evaluate_batch(configs);
}

/// Order-preserving batch prediction over a candidate pool. predict() is
/// a pure const read of the fitted model, so fanning it out over the
/// shared pool is deterministic: pred[i] depends only on configs[i].
/// Small pools stay serial — dispatch would cost more than it saves.
std::vector<double> predict_all(const ml::Regressor& model,
                                const ParamSpace& space,
                                const std::vector<ParamConfig>& configs) {
  std::vector<double> pred(configs.size());
  const auto body = [&](std::size_t i) {
    pred[i] = model.predict(space.features(configs[i]));
  };
  constexpr std::size_t kParallelThreshold = 256;
  if (configs.size() >= kParallelThreshold)
    ThreadPool::global().parallel_for(0, configs.size(), body);
  else
    for (std::size_t i = 0; i < configs.size(); ++i) body(i);
  return pred;
}

}  // namespace

SearchTrace random_search(Evaluator& eval, const RandomSearchOptions& opt) {
  SearchTrace trace("RS", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  ConfigStream stream(eval.space(), opt.seed);
  // Draws whose results have been accounted on the trace. This — not
  // stream.produced() — is what checkpoints must store: a window may have
  // drawn ahead of what was processed when the search stops, and those
  // tail draws never happened as far as a resumed run is concerned.
  std::size_t consumed = 0;

  if (opt.resume != nullptr) {
    trace = opt.resume->trace;
    // Replay the consumed draws against the same seed: the sampler's RNG
    // state and dedup set end up exactly where the snapshot left them.
    for (std::size_t i = 0; i < opt.resume->draws; ++i)
      if (!stream.next()) break;
    consumed = opt.resume->draws;
    if (auto* resilient = find_layer<ResilientEvaluator>(&eval))
      resilient->restore_quarantine(opt.resume->quarantine);
  }

  FailureBudgetTracker budget(opt.failure_budget);
  if (opt.resume != nullptr)
    budget.restore_total(opt.resume->trace.failure_stats().failures);
  const auto take_checkpoint = [&] {
    SearchCheckpoint snapshot;
    snapshot.trace = trace;
    snapshot.draws = consumed;
    if (auto* resilient = find_layer<ResilientEvaluator>(&eval))
      snapshot.quarantine = resilient->quarantined_hashes();
    opt.on_checkpoint(snapshot);
  };
  std::size_t since_checkpoint = 0;
  const auto maybe_checkpoint = [&] {
    if (opt.checkpoint_every == 0 || !opt.on_checkpoint) return;
    if (++since_checkpoint < opt.checkpoint_every) return;
    since_checkpoint = 0;
    take_checkpoint();
  };

  const std::size_t width = batch_width(eval);
  bool space_exhausted = false;
  // An already-exhausted budget (resume of an aborted run) evaluates
  // nothing; the restored trace keeps its checkpointed stop reason.
  while (trace.size() < opt.max_evals && !budget.exhausted() &&
         !space_exhausted) {
    // Windows never overshoot: failed evaluations do not count toward
    // max_evals, so the remaining budget is re-measured every window and
    // a short window is drawn near the end.
    const std::size_t want = std::min(width, opt.max_evals - trace.size());
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> draw_idx;
    configs.reserve(want);
    draw_idx.reserve(want);
    while (configs.size() < want) {
      auto config = stream.next();
      if (!config) {
        space_exhausted = true;
        break;
      }
      draw_idx.push_back(stream.produced() - 1);
      configs.push_back(std::move(*config));
    }
    if (configs.empty()) break;

    const std::vector<EvalResult> results =
        evaluate_window(eval, configs, trace.size());
    // Strictly draw order, regardless of completion order inside the
    // batch — this is what keeps parallel traces bit-identical to serial.
    for (std::size_t i = 0; i < results.size(); ++i) {
      consumed = draw_idx[i] + 1;
      const EvalResult& r = results[i];
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) {
          // The serial search would have stopped drawing here; results
          // after the aborting draw are discarded unseen.
          if (opt.on_checkpoint) take_checkpoint();
          return trace;
        }
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(configs[i]), r.seconds, draw_idx[i]);
      maybe_checkpoint();
    }
  }
  // Final snapshot so interrupted-and-finished runs alike can be extended
  // later (e.g. resumed with a larger eval budget).
  if (opt.on_checkpoint) take_checkpoint();
  return trace;
}

SearchTrace replay_search(Evaluator& eval,
                          std::span<const ParamConfig> order,
                          std::size_t max_evals,
                          std::string algorithm_label,
                          const FailureBudget& fb) {
  SearchTrace trace(std::move(algorithm_label), eval.problem_name(),
                    eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  for (std::size_t i = 0; i < order.size() && trace.size() < max_evals;
       ++i) {
    const EvalResult r = eval.evaluate(order[i]);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(order[i], r.seconds, i);
  }
  return trace;
}

SearchTrace pruned_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const PrunedSearchOptions& opt) {
  PT_REQUIRE(model.is_fitted(), "RS_p requires a fitted surrogate");
  PT_REQUIRE(opt.delta_percent > 0.0 && opt.delta_percent < 100.0,
             "delta must lie strictly between 0 and 100");
  SearchTrace trace("RS_p", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  FailureBudgetTracker budget(opt.failure_budget);

  // Phase 1: estimate the pruning cutoff Delta as the delta-quantile of
  // model predictions over a fresh pool of N configurations. Predictions
  // fan out over the shared pool; the quantile sees them in pool order
  // either way, so the cutoff is identical to the serial computation.
  double cutoff = 0.0;
  {
    obs::ScopedTimer phase("search.RS_p.cutoff", "search",
                           {{"pool_size", opt.pool_size},
                            {"delta_percent", opt.delta_percent}});
    ConfigStream pool_stream(space, opt.seed ^ 0xb1a5ed0full);
    std::vector<ParamConfig> pool;
    pool.reserve(opt.pool_size);
    while (pool.size() < opt.pool_size) {
      auto c = pool_stream.next();
      if (!c) break;
      pool.push_back(std::move(*c));
    }
    PT_REQUIRE(!pool.empty(), "empty prediction pool");
    const std::vector<double> pool_pred = predict_all(model, space, pool);
    cutoff = quantile(pool_pred, opt.delta_percent / 100.0);
    phase.add_field({"cutoff_seconds", cutoff});
  }

  // Phase 2: walk the shared stream (same order RS sees), evaluating only
  // configurations the surrogate predicts below the cutoff. Survivors are
  // gathered into evaluation windows; the prediction filter itself stays
  // on the (sequential) draw path.
  obs::ScopedTimer scan_phase("search.RS_p.scan", "search");
  ConfigStream stream(space, opt.seed);
  std::size_t draws = 0;
  std::size_t pruned = 0;
  const auto publish_prune_stats = [&] {
    scan_phase.add_field({"draws", draws});
    scan_phase.add_field({"pruned", pruned});
    if (draws == 0) return;
    auto& metrics = obs::MetricsRegistry::current();
    metrics.counter("search.draws").add(draws);
    metrics.counter("search.pruned_draws").add(pruned);
    metrics.gauge("search.prune_rate")
        .set(static_cast<double>(pruned) / static_cast<double>(draws));
  };
  const std::size_t width = batch_width(eval);
  bool space_exhausted = false;
  while (trace.size() < opt.max_evals && draws < opt.max_draws &&
         !space_exhausted) {
    const std::size_t want = std::min(width, opt.max_evals - trace.size());
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> draw_idx;
    configs.reserve(want);
    draw_idx.reserve(want);
    while (configs.size() < want && draws < opt.max_draws) {
      auto config = stream.next();
      if (!config) {
        space_exhausted = true;
        break;
      }
      ++draws;
      if (model.predict(space.features(*config)) >= cutoff) {
        ++pruned;
        continue;
      }
      draw_idx.push_back(stream.produced() - 1);
      configs.push_back(std::move(*config));
    }
    if (configs.empty()) break;  // everything left was pruned or drawn out

    const std::vector<EvalResult> results =
        evaluate_window(eval, configs, trace.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const EvalResult& r = results[i];
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) {
          publish_prune_stats();
          return trace;
        }
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(configs[i]), r.seconds, draw_idx[i]);
    }
  }
  publish_prune_stats();

  // Fallback guarantee: if the cutoff pruned everything (e.g. a degenerate
  // model), evaluate the first draws unconditionally so the search always
  // returns a configuration. Deliberately serial: it is a <= 10-eval
  // emergency path, not a throughput path.
  if (trace.empty()) {
    ConfigStream fallback(space, opt.seed);
    while (trace.size() < std::min<std::size_t>(opt.max_evals, 10)) {
      auto config = fallback.next();
      if (!config) break;
      const EvalResult r = eval.evaluate(*config);
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) return trace;
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(*config), r.seconds, fallback.produced() - 1);
    }
  }
  return trace;
}

SearchTrace biased_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const BiasedSearchOptions& opt) {
  PT_REQUIRE(model.is_fitted(), "RS_b requires a fitted surrogate");
  SearchTrace trace("RS_b", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  FailureBudgetTracker budget(opt.failure_budget);

  // Phase 1: sample the candidate pool X_p, predict all run times (fanned
  // out over the shared pool — prediction i depends only on pool entry i,
  // so the ranking is deterministic), and rank by ascending prediction.
  std::vector<ParamConfig> pool;
  std::vector<std::size_t> order;
  {
    obs::ScopedTimer rank_phase("search.RS_b.rank", "search",
                                {{"pool_size", opt.pool_size}});
    ConfigStream stream(space, opt.seed);
    pool.reserve(opt.pool_size);
    while (pool.size() < opt.pool_size) {
      auto c = stream.next();
      if (!c) break;
      pool.push_back(std::move(*c));
    }
    PT_REQUIRE(!pool.empty(), "empty candidate pool");
    order = argsort(predict_all(model, space, pool));
    rank_phase.add_field({"pool", pool.size()});
  }

  // Phase 2: evaluate in ascending predicted-run-time order (equivalent to
  // repeatedly taking argmin over the remaining pool, Algorithm 2 line 7),
  // one window of consecutive ranks at a time.
  const std::size_t width = batch_width(eval);
  std::size_t rank = 0;
  while (rank < order.size() && trace.size() < opt.max_evals) {
    const std::size_t want = std::min(
        {width, opt.max_evals - trace.size(), order.size() - rank});
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> pool_idx;
    configs.reserve(want);
    pool_idx.reserve(want);
    for (std::size_t k = 0; k < want; ++k, ++rank) {
      pool_idx.push_back(order[rank]);
      configs.push_back(pool[order[rank]]);
    }

    const std::vector<EvalResult> results =
        evaluate_window(eval, configs, trace.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const EvalResult& r = results[i];
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) return trace;
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(configs[i]), r.seconds, pool_idx[i]);
    }
  }
  return trace;
}

SearchTrace model_free_pruned(Evaluator& eval, const SearchTrace& source,
                              double delta_percent, std::size_t max_evals,
                              const FailureBudget& fb) {
  PT_REQUIRE(!source.empty(), "RS_pf requires source data");
  SearchTrace trace("RS_pf", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  std::vector<double> ys;
  ys.reserve(source.size());
  for (const auto& e : source.entries()) ys.push_back(e.seconds);
  const double cutoff = quantile(ys, delta_percent / 100.0);

  for (const auto& e : source.entries()) {
    if (trace.size() >= max_evals) break;
    if (e.seconds >= cutoff) continue;  // pruned by the source run time
    const EvalResult r = eval.evaluate(e.config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(e.config, r.seconds, e.draw_index);
  }
  return trace;
}

SearchTrace model_free_biased(Evaluator& eval, const SearchTrace& source,
                              std::size_t max_evals,
                              const FailureBudget& fb) {
  PT_REQUIRE(!source.empty(), "RS_bf requires source data");
  SearchTrace trace("RS_bf", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  std::vector<double> ys;
  ys.reserve(source.size());
  for (const auto& e : source.entries()) ys.push_back(e.seconds);
  const auto order = argsort(ys);

  for (std::size_t rank = 0;
       rank < order.size() && trace.size() < max_evals; ++rank) {
    const auto& e = source.entry(order[rank]);
    const EvalResult r = eval.evaluate(e.config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(e.config, r.seconds, e.draw_index);
  }
  return trace;
}

}  // namespace portatune::tuner
