#include "tuner/random_search.hpp"

#include <algorithm>

#include <optional>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "tuner/guard.hpp"
#include "tuner/observe.hpp"
#include "tuner/sampler.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {

namespace {

/// Account a result on trace + budget. Returns true when the search must
/// abort (budget newly exhausted); records the diagnostic on the trace.
bool abort_on_failure(SearchTrace& trace, FailureBudgetTracker& budget,
                      const EvalResult& r) {
  trace.note_result(r);
  if (!budget.note(r)) return false;
  trace.set_stop_reason(budget.reason());
  return true;
}

/// Evaluation window width for the batched search loops. A plain
/// evaluator advertises width 1, which collapses every window to a single
/// draw and reproduces the historical serial loops instruction for
/// instruction; a ParallelEvaluator widens the window to keep its pool
/// busy. Trace parity holds either way because windows are always
/// processed in draw order.
std::size_t batch_width(const Evaluator& eval) {
  return std::max<std::size_t>(1, eval.capabilities().preferred_batch);
}

/// Window width for the guarded search loops. With the guard enabled the
/// width is pinned to GuardOptions::sync_window instead of the
/// evaluator's preferred batch: adaptive decisions (relax/disable
/// pruning, re-rank the pool) depend on observed results, so the
/// interleaving of trust updates and draw decisions must not vary with
/// the thread count — a fixed window keeps serial and parallel traces
/// bit-identical even when the guard fires mid-search. evaluate_batch
/// accepts any window size; a ParallelEvaluator still fans the fixed
/// window out over its pool.
std::size_t guarded_batch_width(const Evaluator& eval,
                                const GuardOptions& guard) {
  if (!guard.enabled) return batch_width(eval);
  return std::max<std::size_t>(1, guard.sync_window);
}

/// Evaluate one search window under a "search.window" span: the causal
/// parent of every evaluation it fans out, across worker threads (the
/// ThreadPool carries the SpanContext into each task). `evals_done` is
/// the trace size going in, so a trace viewer can line windows up with
/// search progress. Dormant path: one enabled() check, no allocation.
std::vector<EvalResult> evaluate_window(Evaluator& eval,
                                        std::span<const ParamConfig> configs,
                                        std::size_t evals_done) {
  std::optional<obs::ScopedTimer> span;
  if (obs::enabled(obs::Severity::Debug))
    span.emplace("search.window", "search",
                 std::vector<obs::Field>{{"window", configs.size()},
                                         {"evals_done", evals_done}},
                 nullptr, obs::Severity::Debug);
  return eval.evaluate_batch(configs);
}

/// Order-preserving batch prediction over a candidate pool. predict() is
/// a pure const read of the fitted model, so fanning it out over the
/// shared pool is deterministic: pred[i] depends only on configs[i].
/// Small pools stay serial — dispatch would cost more than it saves.
std::vector<double> predict_all(const ml::Regressor& model,
                                const ParamSpace& space,
                                const std::vector<ParamConfig>& configs) {
  std::vector<double> pred(configs.size());
  const auto body = [&](std::size_t i) {
    pred[i] = model.predict(space.features(configs[i]));
  };
  constexpr std::size_t kParallelThreshold = 256;
  if (configs.size() >= kParallelThreshold)
    ThreadPool::global().parallel_for(0, configs.size(), body);
  else
    for (std::size_t i = 0; i < configs.size(); ++i) body(i);
  return pred;
}

}  // namespace

SearchTrace random_search(Evaluator& eval, const RandomSearchOptions& opt) {
  SearchTrace trace("RS", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  ConfigStream stream(eval.space(), opt.seed);
  // Draws whose results have been accounted on the trace. This — not
  // stream.produced() — is what checkpoints must store: a window may have
  // drawn ahead of what was processed when the search stops, and those
  // tail draws never happened as far as a resumed run is concerned.
  std::size_t consumed = 0;

  if (opt.resume != nullptr) {
    trace = opt.resume->trace;
    // Replay the consumed draws against the same seed: the sampler's RNG
    // state and dedup set end up exactly where the snapshot left them.
    for (std::size_t i = 0; i < opt.resume->draws; ++i)
      if (!stream.next()) break;
    consumed = opt.resume->draws;
    if (auto* resilient = find_layer<ResilientEvaluator>(&eval))
      resilient->restore_quarantine(opt.resume->quarantine);
    // A cancellation marker is "interrupted", not "finished": clear it so
    // the resumed search continues where the shutdown stopped it.
    if (trace.stop_reason() == kCancelledStopReason)
      trace.restore_stop_reason("");
  }

  FailureBudgetTracker budget(opt.failure_budget);
  if (opt.resume != nullptr)
    budget.restore_total(opt.resume->trace.failure_stats().failures);
  const auto take_checkpoint = [&] {
    SearchCheckpoint snapshot;
    snapshot.trace = trace;
    snapshot.draws = consumed;
    if (auto* resilient = find_layer<ResilientEvaluator>(&eval))
      snapshot.quarantine = resilient->quarantined_hashes();
    opt.on_checkpoint(snapshot);
  };
  std::size_t since_checkpoint = 0;
  const auto maybe_checkpoint = [&] {
    if (opt.checkpoint_every == 0 || !opt.on_checkpoint) return;
    if (++since_checkpoint < opt.checkpoint_every) return;
    since_checkpoint = 0;
    take_checkpoint();
  };

  const std::size_t width = batch_width(eval);
  bool space_exhausted = false;
  // An already-exhausted budget (resume of an aborted run) evaluates
  // nothing; the restored trace keeps its checkpointed stop reason.
  while (trace.size() < opt.max_evals && !budget.exhausted() &&
         !space_exhausted) {
    // Graceful shutdown: stop at the window boundary. The final
    // checkpoint below still runs, so the run directory stays resumable.
    if (opt.cancel.cancelled()) {
      trace.set_stop_reason(kCancelledStopReason);
      break;
    }
    // Windows never overshoot: failed evaluations do not count toward
    // max_evals, so the remaining budget is re-measured every window and
    // a short window is drawn near the end.
    const std::size_t want = std::min(width, opt.max_evals - trace.size());
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> draw_idx;
    configs.reserve(want);
    draw_idx.reserve(want);
    while (configs.size() < want) {
      auto config = stream.next();
      if (!config) {
        space_exhausted = true;
        break;
      }
      draw_idx.push_back(stream.produced() - 1);
      configs.push_back(std::move(*config));
    }
    if (configs.empty()) break;

    const std::vector<EvalResult> results =
        evaluate_window(eval, configs, trace.size());
    // Strictly draw order, regardless of completion order inside the
    // batch — this is what keeps parallel traces bit-identical to serial.
    for (std::size_t i = 0; i < results.size(); ++i) {
      consumed = draw_idx[i] + 1;
      const EvalResult& r = results[i];
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) {
          // The serial search would have stopped drawing here; results
          // after the aborting draw are discarded unseen.
          if (opt.on_checkpoint) take_checkpoint();
          return trace;
        }
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(configs[i]), r.seconds, draw_idx[i]);
      maybe_checkpoint();
    }
    // A short result vector means the window was cancelled mid-flight:
    // the accounted prefix is consistent (draw order, `consumed` points
    // at the first unprocessed draw), the tail never happened.
    if (results.size() < configs.size()) {
      trace.set_stop_reason(kCancelledStopReason);
      break;
    }
  }
  // Final snapshot so interrupted-and-finished runs alike can be extended
  // later (e.g. resumed with a larger eval budget).
  if (opt.on_checkpoint) take_checkpoint();
  return trace;
}

SearchTrace replay_search(Evaluator& eval,
                          std::span<const ParamConfig> order,
                          std::size_t max_evals,
                          std::string algorithm_label,
                          const FailureBudget& fb,
                          CancellationToken cancel) {
  SearchTrace trace(std::move(algorithm_label), eval.problem_name(),
                    eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  for (std::size_t i = 0; i < order.size() && trace.size() < max_evals;
       ++i) {
    if (cancel.cancelled()) {
      trace.set_stop_reason(kCancelledStopReason);
      break;
    }
    const EvalResult r = eval.evaluate(order[i]);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(order[i], r.seconds, i);
  }
  return trace;
}

SearchTrace pruned_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const PrunedSearchOptions& opt) {
  PT_REQUIRE(model.is_fitted(), "RS_p requires a fitted surrogate");
  PT_REQUIRE(opt.delta_percent > 0.0 && opt.delta_percent < 100.0,
             "delta must lie strictly between 0 and 100");
  SearchTrace trace("RS_p", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  FailureBudgetTracker budget(opt.failure_budget);

  // Phase 1: estimate the pruning cutoff Delta as the delta-quantile of
  // model predictions over a fresh pool of N configurations. Predictions
  // fan out over the shared pool; the quantile sees them in pool order
  // either way, so the cutoff is identical to the serial computation.
  // With the guard enabled a second, relaxed cutoff is precomputed at the
  // midpoint between delta and 100% — the Degraded state prunes against
  // that instead, keeping roughly half the draws the strict cutoff would
  // have discarded.
  double cutoff = 0.0;
  double relaxed_cutoff = 0.0;
  {
    obs::ScopedTimer phase("search.RS_p.cutoff", "search",
                           {{"pool_size", opt.pool_size},
                            {"delta_percent", opt.delta_percent}});
    ConfigStream pool_stream(space, opt.seed ^ 0xb1a5ed0full);
    std::vector<ParamConfig> pool;
    pool.reserve(opt.pool_size);
    while (pool.size() < opt.pool_size) {
      auto c = pool_stream.next();
      if (!c) break;
      pool.push_back(std::move(*c));
    }
    PT_REQUIRE(!pool.empty(), "empty prediction pool");
    const std::vector<double> pool_pred = predict_all(model, space, pool);
    cutoff = quantile(pool_pred, opt.delta_percent / 100.0);
    phase.add_field({"cutoff_seconds", cutoff});
    if (opt.guard.enabled) {
      const double relaxed_percent =
          opt.delta_percent + (100.0 - opt.delta_percent) / 2.0;
      relaxed_cutoff = quantile(pool_pred, relaxed_percent / 100.0);
      phase.add_field({"relaxed_cutoff_seconds", relaxed_cutoff});
    }
  }

  // Phase 2: walk the shared stream (same order RS sees), evaluating only
  // configurations the surrogate predicts below the cutoff. Survivors are
  // gathered into evaluation windows; the prediction filter itself stays
  // on the (sequential) draw path. The guard, when enabled, owns the
  // effective cutoff: strict while Trusted, relaxed while Degraded, and
  // no pruning at all once Disabled (trust collapse or starvation cap) —
  // from that point the scan degenerates to plain RS over the same
  // stream.
  obs::ScopedTimer scan_phase("search.RS_p.scan", "search");
  std::optional<TrustMonitor> monitor;
  if (opt.guard.enabled) monitor.emplace(opt.guard, "RS_p");
  ConfigStream stream(space, opt.seed);
  std::size_t draws = 0;
  std::size_t pruned = 0;
  const auto publish_prune_stats = [&] {
    scan_phase.add_field({"draws", draws});
    scan_phase.add_field({"pruned", pruned});
    if (monitor) {
      scan_phase.add_field({"guard_state", to_string(monitor->state())});
      scan_phase.add_field({"guard_trust", monitor->trust()});
    }
    if (draws == 0) return;
    auto& metrics = obs::MetricsRegistry::current();
    metrics.counter("search.draws").add(draws);
    metrics.counter("search.pruned_draws").add(pruned);
    metrics.gauge("search.prune_rate")
        .set(static_cast<double>(pruned) / static_cast<double>(draws));
  };
  const auto should_prune = [&](double predicted) {
    if (!monitor) return predicted >= cutoff;
    switch (monitor->state()) {
      case GuardState::Trusted:
        return predicted >= cutoff;
      case GuardState::Degraded:
        return predicted >= relaxed_cutoff;
      case GuardState::Disabled:
        return false;
    }
    return false;
  };
  const std::size_t width = guarded_batch_width(eval, opt.guard);
  bool space_exhausted = false;
  while (trace.size() < opt.max_evals && draws < opt.max_draws &&
         !space_exhausted) {
    if (opt.cancel.cancelled()) {
      trace.set_stop_reason(kCancelledStopReason);
      publish_prune_stats();
      return trace;
    }
    const std::size_t want = std::min(width, opt.max_evals - trace.size());
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> draw_idx;
    std::vector<double> window_pred;
    configs.reserve(want);
    draw_idx.reserve(want);
    window_pred.reserve(want);
    while (configs.size() < want && draws < opt.max_draws) {
      auto config = stream.next();
      if (!config) {
        space_exhausted = true;
        break;
      }
      ++draws;
      const double predicted = model.predict(space.features(*config));
      if (should_prune(predicted)) {
        ++pruned;
        // note_prune transitions to Disabled when the starvation cap
        // trips; should_prune then lets every later draw through.
        if (monitor) monitor->note_prune(trace.size());
        continue;
      }
      if (monitor) monitor->note_pass();
      draw_idx.push_back(stream.produced() - 1);
      configs.push_back(std::move(*config));
      window_pred.push_back(predicted);
    }
    if (configs.empty()) break;  // everything left was pruned or drawn out

    const std::vector<EvalResult> results =
        evaluate_window(eval, configs, trace.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const EvalResult& r = results[i];
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) {
          publish_prune_stats();
          return trace;
        }
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(configs[i]), r.seconds, draw_idx[i]);
      if (monitor) monitor->observe(window_pred[i], r.seconds, trace.size());
    }
    if (results.size() < configs.size()) {  // cancelled mid-window
      trace.set_stop_reason(kCancelledStopReason);
      publish_prune_stats();
      return trace;
    }
  }
  publish_prune_stats();

  // Fallback guarantee: if the cutoff pruned everything (e.g. a degenerate
  // model), evaluate the first draws unconditionally so the search always
  // returns a configuration. Deliberately serial: it is a <= 10-eval
  // emergency path, not a throughput path.
  if (trace.empty()) {
    ConfigStream fallback(space, opt.seed);
    while (trace.size() < std::min<std::size_t>(opt.max_evals, 10)) {
      auto config = fallback.next();
      if (!config) break;
      const EvalResult r = eval.evaluate(*config);
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) return trace;
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(*config), r.seconds, fallback.produced() - 1);
    }
  }
  return trace;
}

SearchTrace biased_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const BiasedSearchOptions& opt) {
  PT_REQUIRE(model.is_fitted(), "RS_b requires a fitted surrogate");
  SearchTrace trace("RS_b", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  FailureBudgetTracker budget(opt.failure_budget);

  // Phase 1: sample the candidate pool X_p, predict all run times (fanned
  // out over the shared pool — prediction i depends only on pool entry i,
  // so the ranking is deterministic), and rank by ascending prediction.
  std::vector<ParamConfig> pool;
  std::vector<double> pred;
  std::vector<std::size_t> order;
  {
    obs::ScopedTimer rank_phase("search.RS_b.rank", "search",
                                {{"pool_size", opt.pool_size}});
    ConfigStream stream(space, opt.seed);
    pool.reserve(opt.pool_size);
    while (pool.size() < opt.pool_size) {
      auto c = stream.next();
      if (!c) break;
      pool.push_back(std::move(*c));
    }
    PT_REQUIRE(!pool.empty(), "empty candidate pool");
    pred = predict_all(model, space, pool);
    order = argsort(pred);
    rank_phase.add_field({"pool", pool.size()});
  }

  // Phase 2: evaluate in ascending predicted-run-time order (equivalent to
  // repeatedly taking argmin over the remaining pool, Algorithm 2 line 7),
  // one window at a time. With the guard enabled the order is no longer
  // immutable: when trust degrades and enough target observations have
  // accumulated, a hybrid forest (source rows + weighted target rows) is
  // refitted once and the remaining pool re-ranked; when trust collapses
  // or the refit fails too, the remainder falls back to draw order — the
  // order the pool was sampled in, i.e. plain RS over X_p. `used` makes
  // the re-orderings safe: a configuration is evaluated at most once.
  std::optional<TrustMonitor> monitor;
  if (opt.guard.enabled) monitor.emplace(opt.guard, "RS_b");
  ml::RegressorPtr refit_model;  // owns the hybrid forest after a refit
  std::vector<bool> used(pool.size(), false);
  std::size_t cursor = 0;
  bool draw_order_fallback = false;
  const auto maybe_react = [&] {
    if (!monitor || draw_order_fallback) return;
    if (monitor->state() == GuardState::Disabled) {
      order.resize(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) order[i] = i;
      cursor = 0;
      draw_order_fallback = true;
      return;
    }
    if (monitor->state() == GuardState::Degraded &&
        opt.guard.refit_after > 0 && !monitor->refit_spent() &&
        trace.size() >= opt.guard.refit_after) {
      refit_model =
          fit_hybrid_surrogate(opt.guard.refit_source, trace, space,
                               opt.guard.refit_target_weight,
                               opt.guard.refit_forest);
      pred = predict_all(*refit_model, space, pool);
      order = argsort(pred);
      cursor = 0;
      monitor->note_refit(trace.size());
    }
  };

  const std::size_t width = guarded_batch_width(eval, opt.guard);
  while (trace.size() < opt.max_evals) {
    if (opt.cancel.cancelled()) {
      trace.set_stop_reason(kCancelledStopReason);
      return trace;
    }
    const std::size_t want = std::min(width, opt.max_evals - trace.size());
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> pool_idx;
    std::vector<double> window_pred;
    configs.reserve(want);
    pool_idx.reserve(want);
    window_pred.reserve(want);
    while (configs.size() < want && cursor < order.size()) {
      const std::size_t pick = order[cursor++];
      if (used[pick]) continue;  // evaluated before a re-ranking
      used[pick] = true;
      pool_idx.push_back(pick);
      configs.push_back(pool[pick]);
      window_pred.push_back(pred[pick]);
    }
    if (configs.empty()) break;  // pool exhausted

    const std::vector<EvalResult> results =
        evaluate_window(eval, configs, trace.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const EvalResult& r = results[i];
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) return trace;
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(configs[i]), r.seconds, pool_idx[i]);
      if (monitor) monitor->observe(window_pred[i], r.seconds, trace.size());
    }
    if (results.size() < configs.size()) {  // cancelled mid-window
      trace.set_stop_reason(kCancelledStopReason);
      return trace;
    }
    // Guard reactions happen at window granularity, after the window's
    // results are accounted in draw order — the same points in the
    // decision sequence at every thread count.
    maybe_react();
  }
  return trace;
}

SearchTrace model_free_pruned(Evaluator& eval, const SearchTrace& source,
                              double delta_percent, std::size_t max_evals,
                              const FailureBudget& fb,
                              CancellationToken cancel) {
  PT_REQUIRE(!source.empty(), "RS_pf requires source data");
  SearchTrace trace("RS_pf", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  std::vector<double> ys;
  ys.reserve(source.size());
  for (const auto& e : source.entries()) ys.push_back(e.seconds);
  const double cutoff = quantile(ys, delta_percent / 100.0);

  for (const auto& e : source.entries()) {
    if (trace.size() >= max_evals) break;
    if (cancel.cancelled()) {
      trace.set_stop_reason(kCancelledStopReason);
      break;
    }
    if (e.seconds >= cutoff) continue;  // pruned by the source run time
    const EvalResult r = eval.evaluate(e.config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(e.config, r.seconds, e.draw_index);
  }
  return trace;
}

SearchTrace model_free_biased(Evaluator& eval, const SearchTrace& source,
                              std::size_t max_evals,
                              const FailureBudget& fb,
                              CancellationToken cancel) {
  PT_REQUIRE(!source.empty(), "RS_bf requires source data");
  SearchTrace trace("RS_bf", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  std::vector<double> ys;
  ys.reserve(source.size());
  for (const auto& e : source.entries()) ys.push_back(e.seconds);
  const auto order = argsort(ys);

  for (std::size_t rank = 0;
       rank < order.size() && trace.size() < max_evals; ++rank) {
    if (cancel.cancelled()) {
      trace.set_stop_reason(kCancelledStopReason);
      break;
    }
    const auto& e = source.entry(order[rank]);
    const EvalResult r = eval.evaluate(e.config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(e.config, r.seconds, e.draw_index);
  }
  return trace;
}

}  // namespace portatune::tuner
