#include "tuner/random_search.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "tuner/observe.hpp"
#include "tuner/sampler.hpp"

namespace portatune::tuner {

namespace {

/// Account a result on trace + budget. Returns true when the search must
/// abort (budget newly exhausted); records the diagnostic on the trace.
bool abort_on_failure(SearchTrace& trace, FailureBudgetTracker& budget,
                      const EvalResult& r) {
  trace.note_result(r);
  if (!budget.note(r)) return false;
  trace.set_stop_reason(budget.reason());
  return true;
}

}  // namespace

SearchTrace random_search(Evaluator& eval, const RandomSearchOptions& opt) {
  SearchTrace trace("RS", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  ConfigStream stream(eval.space(), opt.seed);

  if (opt.resume != nullptr) {
    trace = opt.resume->trace;
    // Replay the consumed draws against the same seed: the sampler's RNG
    // state and dedup set end up exactly where the snapshot left them.
    for (std::size_t i = 0; i < opt.resume->draws; ++i)
      if (!stream.next()) break;
    if (auto* resilient = dynamic_cast<ResilientEvaluator*>(&eval))
      resilient->restore_quarantine(opt.resume->quarantine);
  }

  FailureBudgetTracker budget(opt.failure_budget);
  if (opt.resume != nullptr)
    budget.restore_total(opt.resume->trace.failure_stats().failures);
  const auto take_checkpoint = [&] {
    SearchCheckpoint snapshot;
    snapshot.trace = trace;
    snapshot.draws = stream.produced();
    if (auto* resilient = dynamic_cast<ResilientEvaluator*>(&eval))
      snapshot.quarantine = resilient->quarantined_hashes();
    opt.on_checkpoint(snapshot);
  };
  std::size_t since_checkpoint = 0;
  const auto maybe_checkpoint = [&] {
    if (opt.checkpoint_every == 0 || !opt.on_checkpoint) return;
    if (++since_checkpoint < opt.checkpoint_every) return;
    since_checkpoint = 0;
    take_checkpoint();
  };

  // An already-exhausted budget (resume of an aborted run) evaluates
  // nothing; the restored trace keeps its checkpointed stop reason.
  while (trace.size() < opt.max_evals && !budget.exhausted()) {
    auto config = stream.next();
    if (!config) break;  // space exhausted
    const EvalResult r = eval.evaluate(*config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(std::move(*config), r.seconds, stream.produced() - 1);
    maybe_checkpoint();
  }
  // Final snapshot so interrupted-and-finished runs alike can be extended
  // later (e.g. resumed with a larger eval budget).
  if (opt.on_checkpoint) take_checkpoint();
  return trace;
}

SearchTrace replay_search(Evaluator& eval,
                          std::span<const ParamConfig> order,
                          std::size_t max_evals,
                          std::string algorithm_label,
                          const FailureBudget& fb) {
  SearchTrace trace(std::move(algorithm_label), eval.problem_name(),
                    eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  for (std::size_t i = 0; i < order.size() && trace.size() < max_evals;
       ++i) {
    const EvalResult r = eval.evaluate(order[i]);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(order[i], r.seconds, i);
  }
  return trace;
}

SearchTrace pruned_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const PrunedSearchOptions& opt) {
  PT_REQUIRE(model.is_fitted(), "RS_p requires a fitted surrogate");
  PT_REQUIRE(opt.delta_percent > 0.0 && opt.delta_percent < 100.0,
             "delta must lie strictly between 0 and 100");
  SearchTrace trace("RS_p", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  FailureBudgetTracker budget(opt.failure_budget);

  // Phase 1: estimate the pruning cutoff Delta as the delta-quantile of
  // model predictions over a fresh pool of N configurations.
  double cutoff = 0.0;
  {
    obs::ScopedTimer phase("search.RS_p.cutoff", "search",
                           {{"pool_size", opt.pool_size},
                            {"delta_percent", opt.delta_percent}});
    ConfigStream pool_stream(space, opt.seed ^ 0xb1a5ed0full);
    std::vector<double> pool_pred;
    pool_pred.reserve(opt.pool_size);
    while (pool_pred.size() < opt.pool_size) {
      auto c = pool_stream.next();
      if (!c) break;
      pool_pred.push_back(model.predict(space.features(*c)));
    }
    PT_REQUIRE(!pool_pred.empty(), "empty prediction pool");
    cutoff = quantile(pool_pred, opt.delta_percent / 100.0);
    phase.add_field({"cutoff_seconds", cutoff});
  }

  // Phase 2: walk the shared stream (same order RS sees), evaluating only
  // configurations the surrogate predicts below the cutoff.
  obs::ScopedTimer scan_phase("search.RS_p.scan", "search");
  ConfigStream stream(space, opt.seed);
  std::size_t draws = 0;
  std::size_t pruned = 0;
  const auto publish_prune_stats = [&] {
    scan_phase.add_field({"draws", draws});
    scan_phase.add_field({"pruned", pruned});
    if (draws == 0) return;
    auto& metrics = obs::MetricsRegistry::current();
    metrics.counter("search.draws").add(draws);
    metrics.counter("search.pruned_draws").add(pruned);
    metrics.gauge("search.prune_rate")
        .set(static_cast<double>(pruned) / static_cast<double>(draws));
  };
  while (trace.size() < opt.max_evals && draws < opt.max_draws) {
    auto config = stream.next();
    if (!config) break;
    ++draws;
    if (model.predict(space.features(*config)) >= cutoff) {
      ++pruned;
      continue;
    }
    const EvalResult r = eval.evaluate(*config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) {
        publish_prune_stats();
        return trace;
      }
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(std::move(*config), r.seconds, stream.produced() - 1);
  }
  publish_prune_stats();

  // Fallback guarantee: if the cutoff pruned everything (e.g. a degenerate
  // model), evaluate the first draws unconditionally so the search always
  // returns a configuration.
  if (trace.empty()) {
    ConfigStream fallback(space, opt.seed);
    while (trace.size() < std::min<std::size_t>(opt.max_evals, 10)) {
      auto config = fallback.next();
      if (!config) break;
      const EvalResult r = eval.evaluate(*config);
      if (!r.ok) {
        if (abort_on_failure(trace, budget, r)) return trace;
        continue;
      }
      trace.note_result(r);
      budget.note(r);
      trace.record(std::move(*config), r.seconds, fallback.produced() - 1);
    }
  }
  return trace;
}

SearchTrace biased_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const BiasedSearchOptions& opt) {
  PT_REQUIRE(model.is_fitted(), "RS_b requires a fitted surrogate");
  SearchTrace trace("RS_b", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  FailureBudgetTracker budget(opt.failure_budget);

  // Phase 1: sample the candidate pool X_p, predict all run times, and
  // rank by ascending prediction.
  std::vector<ParamConfig> pool;
  std::vector<std::size_t> order;
  {
    obs::ScopedTimer rank_phase("search.RS_b.rank", "search",
                                {{"pool_size", opt.pool_size}});
    ConfigStream stream(space, opt.seed);
    pool.reserve(opt.pool_size);
    while (pool.size() < opt.pool_size) {
      auto c = stream.next();
      if (!c) break;
      pool.push_back(std::move(*c));
    }
    PT_REQUIRE(!pool.empty(), "empty candidate pool");
    std::vector<double> pred(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
      pred[i] = model.predict(space.features(pool[i]));
    order = argsort(pred);
    rank_phase.add_field({"pool", pool.size()});
  }

  // Phase 2: evaluate in ascending predicted-run-time order (equivalent to
  // repeatedly taking argmin over the remaining pool, Algorithm 2 line 7).
  for (std::size_t rank = 0;
       rank < order.size() && trace.size() < opt.max_evals; ++rank) {
    const ParamConfig& config = pool[order[rank]];
    const EvalResult r = eval.evaluate(config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(config, r.seconds, order[rank]);
  }
  return trace;
}

SearchTrace model_free_pruned(Evaluator& eval, const SearchTrace& source,
                              double delta_percent, std::size_t max_evals,
                              const FailureBudget& fb) {
  PT_REQUIRE(!source.empty(), "RS_pf requires source data");
  SearchTrace trace("RS_pf", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  std::vector<double> ys;
  ys.reserve(source.size());
  for (const auto& e : source.entries()) ys.push_back(e.seconds);
  const double cutoff = quantile(ys, delta_percent / 100.0);

  for (const auto& e : source.entries()) {
    if (trace.size() >= max_evals) break;
    if (e.seconds >= cutoff) continue;  // pruned by the source run time
    const EvalResult r = eval.evaluate(e.config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(e.config, r.seconds, e.draw_index);
  }
  return trace;
}

SearchTrace model_free_biased(Evaluator& eval, const SearchTrace& source,
                              std::size_t max_evals,
                              const FailureBudget& fb) {
  PT_REQUIRE(!source.empty(), "RS_bf requires source data");
  SearchTrace trace("RS_bf", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  FailureBudgetTracker budget(fb);
  std::vector<double> ys;
  ys.reserve(source.size());
  for (const auto& e : source.entries()) ys.push_back(e.seconds);
  const auto order = argsort(ys);

  for (std::size_t rank = 0;
       rank < order.size() && trace.size() < max_evals; ++rank) {
    const auto& e = source.entry(order[rank]);
    const EvalResult r = eval.evaluate(e.config);
    if (!r.ok) {
      if (abort_on_failure(trace, budget, r)) break;
      continue;
    }
    trace.note_result(r);
    budget.note(r);
    trace.record(e.config, r.seconds, e.draw_index);
  }
  return trace;
}

}  // namespace portatune::tuner
