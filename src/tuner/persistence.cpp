#include "tuner/persistence.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace portatune::tuner {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

/// Map a parameter value back to its index in the space (exact match).
int value_to_index(const ParamSpace& space, std::size_t param,
                   double value, std::size_t row) {
  const auto& values = space.param(param).values;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] == value) return static_cast<int>(i);
  throw Error("trace row " + std::to_string(row) + ": value " +
              std::to_string(value) + " not in the domain of parameter " +
              space.param(param).name);
}

}  // namespace

void save_trace_csv(std::ostream& os, const SearchTrace& trace,
                    const ParamSpace& space) {
  os << "# portatune-trace v1," << trace.algorithm() << ","
     << trace.problem() << "," << trace.machine() << "\n";
  const auto names = space.names();
  for (const auto& n : names) os << n << ",";
  os << "seconds,draw_index\n";
  os.precision(17);
  for (const auto& e : trace.entries()) {
    const auto features = space.features(e.config);
    for (double v : features) os << v << ",";
    os << e.seconds << "," << e.draw_index << "\n";
  }
}

void save_trace_csv(const std::string& path, const SearchTrace& trace,
                    const ParamSpace& space) {
  std::ofstream os(path);
  PT_REQUIRE(os.good(), "cannot open for writing: " + path);
  save_trace_csv(os, trace, space);
  PT_REQUIRE(os.good(), "write failed: " + path);
}

SearchTrace load_trace_csv(std::istream& is, const ParamSpace& space) {
  std::string line;
  PT_REQUIRE(std::getline(is, line) &&
                 line.rfind("# portatune-trace v1,", 0) == 0,
             "not a portatune trace (bad magic line)");
  const auto meta = split_csv(line.substr(std::string("# ").size()));
  PT_REQUIRE(meta.size() == 4, "malformed trace metadata");
  SearchTrace trace(meta[1], meta[2], meta[3]);

  PT_REQUIRE(std::getline(is, line), "missing trace header row");
  const auto header = split_csv(line);
  PT_REQUIRE(header.size() == space.num_params() + 2,
             "trace header arity does not match the parameter space");
  const auto names = space.names();
  for (std::size_t p = 0; p < names.size(); ++p)
    PT_REQUIRE(header[p] == names[p],
               "trace parameter '" + header[p] +
                   "' does not match space parameter '" + names[p] + "'");

  std::size_t row = 0;
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    PT_REQUIRE(cells.size() == space.num_params() + 2,
               "trace row " + std::to_string(row) + " has wrong arity");
    ParamConfig config(space.num_params());
    for (std::size_t p = 0; p < space.num_params(); ++p)
      config[p] = value_to_index(space, p, std::stod(cells[p]), row);
    const double seconds = std::stod(cells[space.num_params()]);
    PT_REQUIRE(std::isfinite(seconds) && seconds >= 0.0,
               "trace row " + std::to_string(row) + " has a bad run time");
    const auto draw =
        static_cast<std::size_t>(std::stoull(cells[space.num_params() + 1]));
    trace.record(std::move(config), seconds, draw);
  }
  return trace;
}

SearchTrace load_trace_csv(const std::string& path,
                           const ParamSpace& space) {
  std::ifstream is(path);
  PT_REQUIRE(is.good(), "cannot open trace file: " + path);
  return load_trace_csv(is, space);
}

}  // namespace portatune::tuner
