#include "tuner/persistence.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "support/atomic_file.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune::tuner {

namespace {

std::string read_all(std::istream& is) {
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Verify and strip the v3 checksum footer — shared with every other
/// persistence format (see support/checksum.hpp).
std::string verify_v3_payload(const std::string& content, const char* what) {
  return strip_verified_checksum_footer(content, what);
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

/// Map a parameter value back to its index in the space (exact match).
int value_to_index(const ParamSpace& space, std::size_t param,
                   double value, std::size_t row) {
  const auto& values = space.param(param).values;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] == value) return static_cast<int>(i);
  throw Error("trace row " + std::to_string(row) + ": value " +
              std::to_string(value) + " not in the domain of parameter " +
              space.param(param).name);
}

}  // namespace

void save_trace_csv(std::ostream& os, const SearchTrace& trace,
                    const ParamSpace& space) {
  // v3 appends a checksum footer over the whole payload (v2 added the
  // wall_unix column); load_trace_csv still reads v1/v2 files.
  std::ostringstream payload;
  payload << "# portatune-trace v3," << trace.algorithm() << ","
          << trace.problem() << "," << trace.machine() << "\n";
  const auto names = space.names();
  for (const auto& n : names) payload << n << ",";
  payload << "seconds,draw_index,wall_unix\n";
  payload.precision(17);
  for (const auto& e : trace.entries()) {
    const auto features = space.features(e.config);
    for (double v : features) payload << v << ",";
    payload << e.seconds << "," << e.draw_index << "," << e.wall_unix
            << "\n";
  }
  os << append_checksum_footer(payload.str());
}

void save_trace_csv(const std::string& path, const SearchTrace& trace,
                    const ParamSpace& space) {
  // Serialize in memory and go through the crash-safe replacement path:
  // a kill mid-save leaves the previous trace file intact, never a torn
  // one the checksum loader would (correctly but uselessly) reject.
  std::ostringstream os;
  save_trace_csv(os, trace, space);
  atomic_write_file(path, os.str());
}

SearchTrace load_trace_csv(std::istream& is, const ParamSpace& space) {
  // v3 files carry a checksum footer over the whole payload; verify it
  // before any parsing so truncation/corruption fails with a checksum
  // diagnostic, never a confusing parse error deep in the rows.
  std::string content = read_all(is);
  PT_REQUIRE(!content.empty(), "empty trace file");
  if (content.rfind("# portatune-trace v3,", 0) == 0)
    content = verify_v3_payload(content, "trace");
  std::istringstream in(content);

  std::string line;
  PT_REQUIRE(std::getline(in, line), "empty trace file");
  // v1 files predate the wall_unix column; all versions load.
  int version = 0;
  if (line.rfind("# portatune-trace v1,", 0) == 0) version = 1;
  else if (line.rfind("# portatune-trace v2,", 0) == 0) version = 2;
  else if (line.rfind("# portatune-trace v3,", 0) == 0) version = 3;
  PT_REQUIRE(version != 0, "not a portatune trace (bad magic line)");
  const auto meta = split_csv(line.substr(std::string("# ").size()));
  PT_REQUIRE(meta.size() == 4, "malformed trace metadata");
  SearchTrace trace(meta[1], meta[2], meta[3]);

  const std::size_t columns =
      space.num_params() + (version >= 2 ? 3 : 2);
  PT_REQUIRE(std::getline(in, line), "missing trace header row");
  const auto header = split_csv(line);
  PT_REQUIRE(header.size() == columns,
             "trace header arity does not match the parameter space");
  const auto names = space.names();
  for (std::size_t p = 0; p < names.size(); ++p)
    PT_REQUIRE(header[p] == names[p],
               "trace parameter '" + header[p] +
                   "' does not match space parameter '" + names[p] + "'");

  std::size_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    PT_REQUIRE(cells.size() == columns,
               "trace row " + std::to_string(row) + " has wrong arity");
    ParamConfig config(space.num_params());
    for (std::size_t p = 0; p < space.num_params(); ++p)
      config[p] = value_to_index(space, p, std::stod(cells[p]), row);
    const double seconds = std::stod(cells[space.num_params()]);
    PT_REQUIRE(std::isfinite(seconds) && seconds >= 0.0,
               "trace row " + std::to_string(row) + " has a bad run time");
    const auto draw =
        static_cast<std::size_t>(std::stoull(cells[space.num_params() + 1]));
    // v1 rows carry no wall-clock timestamp: restore as 0 ("unknown")
    // rather than stamping load time.
    const double wall =
        version >= 2 ? std::stod(cells[space.num_params() + 2]) : 0.0;
    trace.record(std::move(config), seconds, draw, wall);
  }
  return trace;
}

SearchTrace load_trace_csv(const std::string& path,
                           const ParamSpace& space) {
  std::ifstream is(path);
  PT_REQUIRE(is.good(), "cannot open trace file: " + path);
  return load_trace_csv(is, space);
}

void save_checkpoint_csv(std::ostream& os, const SearchCheckpoint& snapshot,
                         const ParamSpace& space) {
  const SearchTrace& trace = snapshot.trace;
  // v3 appends a checksum footer (v2 added the wall_unix column);
  // load_checkpoint_csv reads all three.
  std::ostringstream payload;
  payload.precision(17);
  payload << "# portatune-checkpoint v3," << trace.algorithm() << ","
          << trace.problem() << "," << trace.machine() << "\n";
  payload << "# draws," << snapshot.draws << "\n";
  payload << "# clock," << trace.total_time() << "\n";
  payload << "# stop," << trace.stop_reason() << "\n";
  const FailureStats& fs = trace.failure_stats();
  payload << "# stats," << fs.attempts << "," << fs.failures << ","
          << fs.transient << "," << fs.deterministic << "," << fs.timeouts
          << "," << fs.overhead_seconds << "\n";
  if (!snapshot.quarantine.empty()) {
    payload << "# quarantine";
    for (const auto h : snapshot.quarantine) payload << "," << hex16(h);
    payload << "\n";
  }
  if (!snapshot.pending.empty()) {
    // Row absent when empty, so checkpoints from the free-function
    // searches (which never suggest) are byte-identical to before.
    payload << "# pending";
    for (const auto& [hash, draw] : snapshot.pending)
      payload << "," << hex16(hash) << ":" << draw;
    payload << "\n";
  }
  const auto names = space.names();
  for (const auto& n : names) payload << n << ",";
  payload << "seconds,elapsed,draw_index,wall_unix\n";
  for (const auto& e : trace.entries()) {
    const auto features = space.features(e.config);
    for (double v : features) payload << v << ",";
    payload << e.seconds << "," << e.elapsed << "," << e.draw_index << ","
            << e.wall_unix << "\n";
  }
  os << append_checksum_footer(payload.str());
}

void save_checkpoint_csv(const std::string& path,
                         const SearchCheckpoint& snapshot,
                         const ParamSpace& space) {
  // Crash-safe replacement (write-temp + fsync + rename + dir fsync):
  // a kill at any instant leaves the previous checkpoint whole.
  std::ostringstream os;
  save_checkpoint_csv(os, snapshot, space);
  atomic_write_file(path, os.str());
}

SearchCheckpoint load_checkpoint_csv(std::istream& is,
                                     const ParamSpace& space) {
  // Checksum verification first (v3): a resumed run must never proceed
  // from a checkpoint whose bytes cannot be trusted.
  std::string content = read_all(is);
  PT_REQUIRE(!content.empty(), "empty checkpoint file");
  if (content.rfind("# portatune-checkpoint v3,", 0) == 0)
    content = verify_v3_payload(content, "checkpoint");
  std::istringstream in(content);

  std::string line;
  PT_REQUIRE(std::getline(in, line), "empty checkpoint file");
  // v1 files predate the wall_unix column; all versions load.
  int version = 0;
  if (line.rfind("# portatune-checkpoint v1,", 0) == 0) version = 1;
  else if (line.rfind("# portatune-checkpoint v2,", 0) == 0) version = 2;
  else if (line.rfind("# portatune-checkpoint v3,", 0) == 0) version = 3;
  PT_REQUIRE(version != 0, "not a portatune checkpoint (bad magic line)");
  const auto meta = split_csv(line.substr(std::string("# ").size()));
  PT_REQUIRE(meta.size() == 4, "malformed checkpoint metadata");

  SearchCheckpoint snapshot;
  snapshot.trace = SearchTrace(meta[1], meta[2], meta[3]);
  SearchTrace& trace = snapshot.trace;

  double clock = 0.0;
  FailureStats fs;
  std::string header_line;
  // Metadata rows run until the first non-"# " line (the column header).
  while (std::getline(in, line)) {
    if (line.rfind("# ", 0) != 0) {
      header_line = line;
      break;
    }
    const std::string body = line.substr(2);
    const auto comma = body.find(',');
    const std::string key = body.substr(0, comma);
    const std::string rest =
        comma == std::string::npos ? std::string() : body.substr(comma + 1);
    if (key == "draws") {
      snapshot.draws = static_cast<std::size_t>(std::stoull(rest));
    } else if (key == "clock") {
      clock = std::stod(rest);
    } else if (key == "stop") {
      // restore_stop_reason, not set_stop_reason: loading a checkpoint of
      // an aborted search must not re-announce the abort (no event/flush).
      if (!rest.empty()) trace.restore_stop_reason(rest);
    } else if (key == "stats") {
      const auto cells = split_csv(rest);
      PT_REQUIRE(cells.size() == 6, "malformed checkpoint stats row");
      fs.attempts = std::stoull(cells[0]);
      fs.failures = std::stoull(cells[1]);
      fs.transient = std::stoull(cells[2]);
      fs.deterministic = std::stoull(cells[3]);
      fs.timeouts = std::stoull(cells[4]);
      fs.overhead_seconds = std::stod(cells[5]);
    } else if (key == "quarantine") {
      for (const auto& cell : split_csv(rest))
        snapshot.quarantine.push_back(std::stoull(cell, nullptr, 16));
    } else if (key == "pending") {
      for (const auto& cell : split_csv(rest)) {
        const auto colon = cell.find(':');
        PT_REQUIRE(colon != std::string::npos,
                   "malformed checkpoint pending cell: " + cell);
        snapshot.pending.emplace_back(
            std::stoull(cell.substr(0, colon), nullptr, 16),
            static_cast<std::size_t>(std::stoull(cell.substr(colon + 1))));
      }
    } else {
      throw Error("unknown checkpoint metadata key: " + key);
    }
  }

  PT_REQUIRE(!header_line.empty(), "missing checkpoint header row");
  const std::size_t columns =
      space.num_params() + (version >= 2 ? 4 : 3);
  const auto header = split_csv(header_line);
  PT_REQUIRE(header.size() == columns,
             "checkpoint header arity does not match the parameter space");
  const auto names = space.names();
  for (std::size_t p = 0; p < names.size(); ++p)
    PT_REQUIRE(header[p] == names[p],
               "checkpoint parameter '" + header[p] +
                   "' does not match space parameter '" + names[p] + "'");

  std::size_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    PT_REQUIRE(cells.size() == columns,
               "checkpoint row " + std::to_string(row) + " has wrong arity");
    ParamConfig config(space.num_params());
    for (std::size_t p = 0; p < space.num_params(); ++p)
      config[p] = value_to_index(space, p, std::stod(cells[p]), row);
    const double seconds = std::stod(cells[space.num_params()]);
    const double elapsed = std::stod(cells[space.num_params() + 1]);
    PT_REQUIRE(std::isfinite(seconds) && seconds >= 0.0,
               "checkpoint row " + std::to_string(row) +
                   " has a bad run time");
    PT_REQUIRE(std::isfinite(elapsed) && elapsed >= 0.0,
               "checkpoint row " + std::to_string(row) +
                   " has a bad elapsed time");
    const auto draw =
        static_cast<std::size_t>(std::stoull(cells[space.num_params() + 2]));
    const double wall =
        version >= 2 ? std::stod(cells[space.num_params() + 3]) : 0.0;
    trace.restore_entry(std::move(config), seconds, elapsed, draw, wall);
  }
  trace.restore_failure_stats(fs);
  trace.restore_clock(clock);
  PT_REQUIRE(snapshot.draws >= trace.size(),
             "checkpoint draw count is smaller than its trace");
  return snapshot;
}

SearchCheckpoint load_checkpoint_csv(const std::string& path,
                                     const ParamSpace& space) {
  std::ifstream is(path);
  PT_REQUIRE(is.good(), "cannot open checkpoint file: " + path);
  return load_checkpoint_csv(is, space);
}

}  // namespace portatune::tuner
