// Uniform without-replacement sampling stream over a parameter space.
//
// This object *is* the paper's variance-reduction device (Sec. IV-D,
// "method of common random numbers"): a stream seeded identically produces
// the identical draw sequence, so RS on the source machine, RS replayed on
// the target machine, and RS-with-pruning on the target machine all walk
// the same configurations in the same order.
#pragma once

#include <optional>
#include <unordered_set>

#include "tuner/param.hpp"

namespace portatune::tuner {

class ConfigStream {
 public:
  ConfigStream(const ParamSpace& space, std::uint64_t seed);

  /// Next distinct configuration, or nullopt once the space (or the
  /// rejection budget on astronomically large spaces) is exhausted.
  std::optional<ParamConfig> next();

  /// Number of configurations produced so far.
  std::size_t produced() const noexcept { return produced_; }

  const ParamSpace& space() const noexcept { return *space_; }

 private:
  const ParamSpace* space_;
  Rng rng_;
  std::unordered_set<std::uint64_t> seen_;
  double cardinality_;
  std::size_t produced_ = 0;
  // For tiny spaces, a pre-shuffled full enumeration guarantees exact
  // without-replacement semantics and clean exhaustion.
  std::vector<ParamConfig> enumerated_;
  std::size_t cursor_ = 0;
  bool use_enumeration_ = false;
};

}  // namespace portatune::tuner
