// Performance and search-time speedups (Sec. IV-D).
//
// Worked example from the paper: RS takes 100 s to find its best
// configuration (run time 5 s); RS_b takes 80 s to find its best (3 s) but
// only 50 s to find a configuration with run time <= 5 s. Then the
// performance speedup of RS_b over RS is 5/3 = 1.6x and the search-time
// speedup is 100/50 = 2x. A variant is "successful" when performance
// speedup >= 1.0 and search-time speedup > 1.0.
#pragma once

#include "tuner/trace.hpp"

namespace portatune::tuner {

struct Speedups {
  /// Prf.Imp: best RS run time / best variant run time.
  double performance = 0.0;
  /// Srh.Imp: RS time-to-its-best / variant time-to-reach-RS-best
  /// (0 when the variant never reaches the RS best).
  double search = 0.0;

  bool successful() const noexcept {
    return performance >= 1.0 && search > 1.0;
  }
};

/// Compute both speedups of `variant` over the reference `rs` trace.
Speedups compare_to_rs(const SearchTrace& rs, const SearchTrace& variant);

}  // namespace portatune::tuner
