// Plain random search without replacement (the paper's "RS") and its
// transfer-accelerated variants:
//
//   RS    — Sec. II: uniform sampling without replacement from D.
//   RS_p  — Algorithm 1: a surrogate fitted on the source machine's data
//           prunes configurations predicted slower than the delta-quantile
//           cutoff before they are ever run on the target machine.
//   RS_b  — Algorithm 2: the surrogate ranks a large pool of N candidate
//           configurations; the target machine evaluates them in ascending
//           predicted-run-time order.
//   RS_pf — model-free pruning: the cutoff comes from the source run
//           times themselves; only source configurations that beat it are
//           re-evaluated, in source order.
//   RS_bf — model-free biasing: the source configurations are re-evaluated
//           in ascending order of their *source* run times.
//
// All functions are deterministic given their seeds; the shared-seed
// ConfigStream implements the common-random-numbers protocol of Sec. IV-D.
#pragma once

#include <functional>
#include <utility>

#include "ml/model.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/resilience.hpp"
#include "tuner/search_options.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

/// Snapshot of an in-progress random search: everything needed to resume
/// it exactly — the partial trace, the number of stream draws consumed
/// (replaying them against the same seed reproduces the sampler state),
/// and the quarantined configuration hashes of a ResilientEvaluator.
/// Serialized by save_checkpoint_csv / load_checkpoint_csv.
struct SearchCheckpoint {
  SearchTrace trace;
  std::size_t draws = 0;  ///< ConfigStream::produced() at snapshot time
  std::vector<std::uint64_t> quarantine;
  /// Suggestions handed out by TuningSession::suggest() but not yet
  /// report()ed at snapshot time: (config hash, draw index) pairs. The
  /// draws are counted in `draws` (the stream already produced them), so
  /// persisting the pairs is what lets a resumed session still accept
  /// report() for them. Always empty for the free-function searches.
  std::vector<std::pair<std::uint64_t, std::size_t>> pending;
};

struct RandomSearchOptions : SearchCommon {
  /// Invoke on_checkpoint after every `checkpoint_every` recorded
  /// evaluations (0 disables the periodic snapshots), and once more when
  /// the search returns. The callback owns persistence.
  std::size_t checkpoint_every = 0;
  std::function<void(const SearchCheckpoint&)> on_checkpoint;
  /// Resume from a snapshot: the trace is continued, the stream is
  /// fast-forwarded by `draws`, and (when `eval` is a ResilientEvaluator)
  /// the quarantine is restored. The same seed must be passed.
  const SearchCheckpoint* resume = nullptr;
};

/// RS: evaluate the first max_evals draws of the stream.
SearchTrace random_search(Evaluator& eval, const RandomSearchOptions& opt);

/// Evaluate an explicit configuration order (used to replay a source
/// machine's RS order on a target machine). Failed evaluations are
/// skipped and do not count toward max_evals, but do consume the
/// failure budget.
SearchTrace replay_search(Evaluator& eval,
                          std::span<const ParamConfig> order,
                          std::size_t max_evals,
                          std::string algorithm_label = "RS",
                          const FailureBudget& budget = {},
                          CancellationToken cancel = {});

struct PrunedSearchOptions : SearchCommon {
  std::size_t pool_size = 10000;   ///< N, for the cutoff quantile estimate
  double delta_percent = 20.0;     ///< delta: prune above this quantile
  std::size_t max_draws = 10000;   ///< stop after this many stream draws
};

/// RS_p (Algorithm 1). `model` must be fitted on the source machine data.
/// With `opt.guard.enabled` the pruning cutoff follows the TrustMonitor:
/// strict while Trusted, relaxed to the midpoint quantile while Degraded,
/// and no pruning at all once Disabled (trust collapse or starvation
/// cap) — see tuner/guard.hpp.
SearchTrace pruned_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const PrunedSearchOptions& opt);

struct BiasedSearchOptions : SearchCommon {
  std::size_t pool_size = 10000; ///< N
};

/// RS_b (Algorithm 2). `model` must be fitted on the source machine data.
/// With `opt.guard.enabled` the evaluation order follows the
/// TrustMonitor: model-ranked while Trusted, re-ranked by a once-refitted
/// hybrid forest (guard.refit_after target rows accumulated) on
/// degradation, and falling back to draw order once Disabled.
SearchTrace biased_random_search(Evaluator& eval,
                                 const ml::Regressor& model,
                                 const BiasedSearchOptions& opt);

/// RS_pf: model-free pruning over the source trace (delta in percent).
SearchTrace model_free_pruned(Evaluator& eval, const SearchTrace& source,
                              double delta_percent,
                              std::size_t max_evals = SIZE_MAX,
                              const FailureBudget& budget = {},
                              CancellationToken cancel = {});

/// RS_bf: model-free biasing over the source trace.
SearchTrace model_free_biased(Evaluator& eval, const SearchTrace& source,
                              std::size_t max_evals = SIZE_MAX,
                              const FailureBudget& budget = {},
                              CancellationToken cancel = {});

}  // namespace portatune::tuner
