// Heartbeat deadline watchdog for in-flight evaluations.
//
// One process-wide monitor thread supervises every registered attempt: a
// layer that starts a potentially-hanging evaluation registers a
// (CancellationSource, deadline) pair and gets back an RAII Ticket. If
// the attempt finishes in time, the Ticket's destructor (or disarm())
// unregisters it and nothing happens. If the deadline passes first, the
// monitor cancels the attempt's source — waking anything cooperatively
// parked on its token, like the fault injector's simulated hang — and
// emits one Warn `eval.hang_detected` event plus an `eval.hang_detected`
// counter increment. On process shutdown the monitor cancels *all*
// registered attempts immediately (no hang events: they are not hung,
// the process is leaving), so graceful shutdown never waits out a stall.
//
// The watchdog frees *workers*; it does not classify results. A
// cooperative hang returns its own Timeout-classified failure whether the
// cancel arrived early or the stall ran its course, and the
// ResilientEvaluator's caller-side deadline stays the strict authority on
// non-cooperative (truly stuck) attempts — so traces are identical with
// the watchdog armed or not, only wall-clock time differs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "support/cancellation.hpp"

namespace portatune::tuner {

class EvalWatchdog {
 public:
  /// RAII registration handle. Destruction (or disarm()) unregisters the
  /// attempt; both are no-ops after the deadline already fired.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : owner_(o.owner_), id_(o.id_) {
      o.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        disarm();
        owner_ = o.owner_;
        id_ = o.id_;
        o.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { disarm(); }

    void disarm() noexcept;

    /// Fire the deadline *now* (caller-side deadline hit first): cancel
    /// the attempt and report the hang, unless the monitor already did —
    /// whoever removes the registration reports, so each hang is counted
    /// exactly once.
    void expire() noexcept;

   private:
    friend class EvalWatchdog;
    Ticket(EvalWatchdog* owner, std::uint64_t id) : owner_(owner), id_(id) {}
    EvalWatchdog* owner_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Supervise one attempt: after `deadline_seconds`, `source` is
  /// cancelled and a hang is reported. `label` tags the event
  /// ("problem@machine", a search window, ...). The monitor thread starts
  /// lazily on the first watch.
  Ticket watch(CancellationSource source, double deadline_seconds,
               std::string label);

  /// Process-total hang detections (monotonic, for tests).
  std::uint64_t hangs_detected() const noexcept {
    return hangs_.load(std::memory_order_relaxed);
  }

  static EvalWatchdog& global();

  ~EvalWatchdog();
  EvalWatchdog(const EvalWatchdog&) = delete;
  EvalWatchdog& operator=(const EvalWatchdog&) = delete;

 private:
  EvalWatchdog() = default;

  struct Entry {
    CancellationSource source;
    std::chrono::steady_clock::time_point deadline;
    double deadline_seconds = 0.0;
    std::string label;
  };

  void unregister(std::uint64_t id) noexcept;
  void expire_now(std::uint64_t id) noexcept;
  void report_hang(Entry& entry) noexcept;
  void monitor_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  bool shutdown_broadcast_done_ = false;
  std::atomic<std::uint64_t> hangs_{0};
  std::thread monitor_;  ///< started lazily by the first watch()
};

}  // namespace portatune::tuner
