// Guarded transfer: online surrogate-trust monitoring.
//
// A surrogate fitted on a dissimilar source machine (the X-Gene rows of
// Tables IV/V, rho_s far below the Westmere<->Sandybridge 0.8+) can
// actively mislead RS_p / RS_b: pruning the true optimum, or biasing the
// search toward configurations that are slow on the target. TrustMonitor
// closes that loop. It maintains a sliding-window Spearman rank
// correlation between the surrogate's *predicted* run times and the run
// times actually *observed* on the target machine, plus a consecutive-
// prune counter, and drives a three-state machine:
//
//   Trusted   — the model's ranking agrees with reality; the search uses
//               it exactly as the unguarded variant would (bit-identical
//               traces when the guard never leaves this state).
//   Degraded  — windowed trust fell below `floor`; RS_p relaxes its
//               pruning cutoff to the midpoint quantile, RS_b refits a
//               hybrid forest on accumulated target observations (once,
//               when refit_after allows) and re-ranks the remaining pool.
//   Disabled  — trust fell below `disable_floor`, or consecutive prunes
//               exceeded the starvation cap, or a refit's trust collapsed
//               again. Pruning stops entirely and biasing falls back to
//               draw order: the search degenerates to plain RS from here
//               on, so a hostile model can never starve it. Disabled is
//               sticky (except through an allowed refit).
//
// Every transition is emitted as a Warn "guard.state" event plus
// guard.trust / guard.transitions metrics, and recorded on an in-memory
// timeline the experiment engine and tests read back.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ml/forest.hpp"

namespace portatune::tuner {

class SearchTrace;

enum class GuardState : int { Trusted = 0, Degraded = 1, Disabled = 2 };

const char* to_string(GuardState s) noexcept;

/// One guard state transition, in search order.
struct GuardTransition {
  GuardState from = GuardState::Trusted;
  GuardState to = GuardState::Trusted;
  std::size_t evals = 0;   ///< trace size when the transition fired
  double trust = 0.0;      ///< windowed rank correlation at that moment
  std::string reason;      ///< "trust-floor" | "trust-collapse" |
                           ///< "starvation" | "refit" | "recovered"
};

/// Guard configuration, threaded through SearchCommon so every search
/// option struct (and ExperimentSettings / EvaluatorStackOptions) carries
/// it. Disabled by default: the guarded searches are bit-identical to
/// their unguarded selves until `enabled` is set.
struct GuardOptions {
  bool enabled = false;
  /// Sliding window of (predicted, observed) pairs the trust statistic is
  /// computed over.
  std::size_t window = 25;
  /// No verdict before this many pairs: a handful of observations cannot
  /// convict (or acquit) the model.
  std::size_t min_observations = 10;
  /// Windowed Spearman below this: Degraded (relax pruning / refit bias).
  double floor = 0.2;
  /// Windowed Spearman below this: Disabled (stop trusting entirely).
  double disable_floor = -0.2;
  /// Hard cap on consecutive pruned draws before pruning is forcibly
  /// disabled, independent of trust — the starvation guarantee.
  std::size_t max_consecutive_prunes = 200;
  /// RS_b: refit a hybrid forest on accumulated target observations once
  /// this many are available and trust has left Trusted (0 = never).
  /// At most one refit per search; a second collapse disables the model.
  std::size_t refit_after = 0;
  /// Each target row enters the hybrid refit training set this many times
  /// (importance weighting against the source rows).
  std::size_t refit_target_weight = 3;
  /// Source trace mixed into the hybrid refit (nullptr = target-only).
  /// Must outlive the search when set.
  const SearchTrace* refit_source = nullptr;
  ml::ForestParams refit_forest{};
  /// Evaluation-window width used while the guard is enabled. Fixed (not
  /// the evaluator's preferred batch) so the interleaving of trust
  /// updates and pruning decisions is identical at every thread count —
  /// this is what keeps serial-vs-parallel trace parity with the guard
  /// firing mid-search.
  std::size_t sync_window = 8;
  /// Invoked on every transition (after the event/metric emission); used
  /// by the experiment engine to assemble per-search guard timelines.
  std::function<void(const GuardTransition&)> on_transition;
};

/// Online trust monitor for one guarded search. Not thread-safe: searches
/// feed it from their (sequential) accounting loop only.
class TrustMonitor {
 public:
  /// `label` names the consuming search in events ("RS_p", "RS_b", ...).
  TrustMonitor(const GuardOptions& opt, std::string label);

  /// Record one (predicted, observed) pair and re-evaluate trust.
  /// `evals` is the trace size after the observation (for the timeline).
  void observe(double predicted, double observed_seconds, std::size_t evals);

  /// Account one pruned draw. Returns true when this prune newly tripped
  /// the starvation cap (the caller must stop pruning; the monitor has
  /// already transitioned to Disabled).
  bool note_prune(std::size_t evals);
  /// Account one draw that passed the pruning filter.
  void note_pass() noexcept { consecutive_prunes_ = 0; }

  /// Windowed Spearman rank correlation of predicted vs observed; 1.0
  /// until min_observations pairs have been seen (no evidence = trust).
  double trust() const;
  GuardState state() const noexcept { return state_; }
  std::size_t observations() const noexcept { return window_.size(); }
  std::size_t consecutive_prunes() const noexcept {
    return consecutive_prunes_;
  }

  /// A refit consumed the accumulated evidence: clear the window, return
  /// to Trusted, and burn the one refit allowance. Records a "refit"
  /// transition.
  void note_refit(std::size_t evals);
  bool refit_spent() const noexcept { return refit_spent_; }

  const std::vector<GuardTransition>& timeline() const noexcept {
    return timeline_;
  }

 private:
  void transition(GuardState to, std::size_t evals, const char* reason);

  GuardOptions opt_;
  std::string label_;
  GuardState state_ = GuardState::Trusted;
  std::deque<std::pair<double, double>> window_;  ///< (predicted, observed)
  std::size_t consecutive_prunes_ = 0;
  bool refit_spent_ = false;
  std::vector<GuardTransition> timeline_;
};

}  // namespace portatune::tuner
