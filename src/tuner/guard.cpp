#include "tuner/guard.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/correlation.hpp"

namespace portatune::tuner {

const char* to_string(GuardState s) noexcept {
  switch (s) {
    case GuardState::Trusted:
      return "trusted";
    case GuardState::Degraded:
      return "degraded";
    case GuardState::Disabled:
      return "disabled";
  }
  return "unknown";
}

TrustMonitor::TrustMonitor(const GuardOptions& opt, std::string label)
    : opt_(opt), label_(std::move(label)) {}

double TrustMonitor::trust() const {
  if (window_.size() < opt_.min_observations) return 1.0;
  std::vector<double> predicted;
  std::vector<double> observed;
  predicted.reserve(window_.size());
  observed.reserve(window_.size());
  for (const auto& [p, o] : window_) {
    predicted.push_back(p);
    observed.push_back(o);
  }
  return spearman(predicted, observed);
}

void TrustMonitor::observe(double predicted, double observed_seconds,
                           std::size_t evals) {
  window_.emplace_back(predicted, observed_seconds);
  if (opt_.window > 0 && window_.size() > opt_.window) window_.pop_front();
  if (state_ == GuardState::Disabled) return;  // sticky (refit excepted)

  const double t = trust();
  if (t < opt_.disable_floor) {
    transition(GuardState::Disabled, evals, "trust-collapse");
  } else if (t < opt_.floor) {
    if (state_ == GuardState::Trusted)
      transition(GuardState::Degraded, evals, "trust-floor");
  } else if (state_ == GuardState::Degraded) {
    transition(GuardState::Trusted, evals, "recovered");
  }
}

bool TrustMonitor::note_prune(std::size_t evals) {
  ++consecutive_prunes_;
  if (state_ == GuardState::Disabled) return false;
  if (consecutive_prunes_ > opt_.max_consecutive_prunes) {
    transition(GuardState::Disabled, evals, "starvation");
    return true;
  }
  return false;
}

void TrustMonitor::note_refit(std::size_t evals) {
  refit_spent_ = true;
  window_.clear();
  consecutive_prunes_ = 0;
  transition(GuardState::Trusted, evals, "refit");
  auto& reg = obs::MetricsRegistry::current();
  reg.counter("guard.refits").add(1);
}

void TrustMonitor::transition(GuardState to, std::size_t evals,
                              const char* reason) {
  if (to == state_) return;
  GuardTransition tr;
  tr.from = state_;
  tr.to = to;
  tr.evals = evals;
  tr.trust = trust();
  tr.reason = reason;
  state_ = to;
  timeline_.push_back(tr);

  auto& reg = obs::MetricsRegistry::current();
  reg.counter("guard.transitions").add(1);
  reg.gauge("guard.trust").set(tr.trust);
  reg.gauge("guard.state").set(static_cast<double>(static_cast<int>(to)));

  if (obs::enabled(obs::Severity::Warn)) {
    obs::emit(obs::make_instant(
        obs::Severity::Warn, "guard.state", "search",
        {{"search", label_},
         {"from", to_string(tr.from)},
         {"to", to_string(tr.to)},
         {"trust", tr.trust},
         {"evals", static_cast<std::uint64_t>(tr.evals)},
         {"reason", tr.reason}}));
  }

  if (opt_.on_transition) opt_.on_transition(tr);
}

}  // namespace portatune::tuner
