// Adaptive (online-refit) transfer search — an extension of the paper's
// RS_b along its own future-work axis.
//
// RS_b trusts the source-machine surrogate for all n_max evaluations.
// When source and target rank configurations differently, that trust is
// misplaced; the fix is the obvious one: every `refit_interval` target
// evaluations, refit the surrogate on source data *plus* everything
// measured on the target so far (optionally weighting target rows more),
// and re-rank the remaining candidate pool. With refit_interval >= n_max
// this degenerates to exactly RS_b; with source data excluded it becomes
// a from-scratch model-based search on the target.
#pragma once

#include "ml/forest.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/resilience.hpp"
#include "tuner/search_options.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

struct AdaptiveSearchOptions : SearchCommon {
  std::size_t pool_size = 10000;
  std::size_t refit_interval = 10;  ///< target evals between refits
  /// Each target row enters the training set this many times (cheap
  /// importance weighting against the 100 source rows).
  std::size_t target_weight = 3;
  /// Drop the source rows entirely after this many target evaluations
  /// (0 = keep forever).
  std::size_t forget_source_after = 0;
  ml::ForestParams forest{};
};

/// Biased search with periodic refits on accumulated target data.
/// `source` may be empty (pure online model-based search).
SearchTrace adaptive_biased_search(Evaluator& target,
                                   const SearchTrace& source,
                                   const AdaptiveSearchOptions& opt);

}  // namespace portatune::tuner
