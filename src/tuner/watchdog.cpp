#include "tuner/watchdog.hpp"

#include <algorithm>
#include <vector>

#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/signal.hpp"

namespace portatune::tuner {

EvalWatchdog& EvalWatchdog::global() {
  // Intentionally leaked: worker threads of searches torn down during
  // process exit may still disarm tickets after static destructors run.
  static EvalWatchdog* instance = new EvalWatchdog();
  return *instance;
}

EvalWatchdog::~EvalWatchdog() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void EvalWatchdog::Ticket::disarm() noexcept {
  if (owner_ != nullptr) owner_->unregister(id_);
  owner_ = nullptr;
}

void EvalWatchdog::Ticket::expire() noexcept {
  if (owner_ != nullptr) owner_->expire_now(id_);
  owner_ = nullptr;
}

void EvalWatchdog::unregister(std::uint64_t id) noexcept {
  std::lock_guard lock(mutex_);
  entries_.erase(id);  // absent when the deadline already fired
}

void EvalWatchdog::expire_now(std::uint64_t id) noexcept {
  Entry entry;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(id);
    if (it == entries_.end()) return;  // monitor already fired + reported
    entry = std::move(it->second);
    entries_.erase(it);
  }
  report_hang(entry);
}

void EvalWatchdog::report_hang(Entry& entry) noexcept {
  entry.source.request_cancel();
  hangs_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::current().counter("eval.hang_detected").add(1);
  if (obs::enabled(obs::Severity::Warn))
    obs::emit(obs::make_instant(
        obs::Severity::Warn, "eval.hang_detected", "eval",
        {{"label", entry.label},
         {"deadline_seconds", entry.deadline_seconds}}));
  // A detected hang is an abnormal-exit precursor: ship the black box
  // now, while the final moments are still in the ring.
  obs::dump_flight_recorder("eval.hang_detected");
}

EvalWatchdog::Ticket EvalWatchdog::watch(CancellationSource source,
                                         double deadline_seconds,
                                         std::string label) {
  Entry entry;
  entry.source = std::move(source);
  entry.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(deadline_seconds));
  entry.deadline_seconds = deadline_seconds;
  entry.label = std::move(label);
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    id = next_id_++;
    entries_.emplace(id, std::move(entry));
    if (!monitor_.joinable())
      monitor_ = std::thread([this] { monitor_loop(); });
  }
  cv_.notify_all();
  return Ticket(this, id);
}

void EvalWatchdog::monitor_loop() {
  // The heartbeat bounds how late the shutdown broadcast can be; expired
  // deadlines wake the loop exactly on time via wait_until.
  constexpr auto kHeartbeat = std::chrono::milliseconds(50);
  std::unique_lock lock(mutex_);
  while (!stop_) {
    auto wake = std::chrono::steady_clock::now() + kHeartbeat;
    for (const auto& [id, entry] : entries_)
      wake = std::min(wake, entry.deadline);
    cv_.wait_until(lock, wake, [this] { return stop_; });
    if (stop_) return;

    if (shutdown_requested() && !shutdown_broadcast_done_) {
      // Not hangs: the process is leaving. Cancel everything so no
      // cooperative stall outlives the shutdown request.
      shutdown_broadcast_done_ = true;
      for (auto& [id, entry] : entries_) entry.source.request_cancel();
    }

    const auto now = std::chrono::steady_clock::now();
    std::vector<Entry> fired;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.deadline <= now) {
        fired.push_back(std::move(it->second));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    if (fired.empty()) continue;

    // Report without the lock held: sinks may be slow, and report_hang
    // only touches the already-detached entries.
    lock.unlock();
    for (auto& entry : fired) report_hang(entry);
    lock.lock();
  }
}

}  // namespace portatune::tuner
