// Parallel batch evaluation: the concurrency layer between search
// algorithms and evaluation backends.
//
// ParallelEvaluator is a decorator that fans an evaluate_batch() window
// out over a support::ThreadPool. Results keep *batch order* (result i is
// batch[i]) regardless of completion order, so a search that processes a
// window in draw order produces a trace bit-identical to the serial path
// under the common-random-numbers protocol.
//
// Composition: ParallelEvaluator goes OUTERMOST —
//
//     backend -> FaultInjectingEvaluator -> ObservedEvaluator
//             -> ResilientEvaluator -> ParallelEvaluator -> search
//
// because the fan-out calls inner->evaluate() concurrently; every layer
// underneath must therefore be thread-safe. All decorator layers are
// (atomic counters, mutex-guarded quarantine/fault state, lock-protected
// sinks); backends advertise their own safety via capabilities(). When the
// inner evaluator reports thread_safe == false the fan-out silently
// degrades to the serial fallback, so composing with a serial backend is
// always correct, just not faster.
//
// Determinism: the simulated backends derive noise from a pure hash of
// (machine, kernel, configuration) and the fault injector keys its
// channels on (seed, configuration, per-config attempt index) — never on
// global call order — so evaluating a window concurrently returns the
// exact results the serial loop would, independent of thread scheduling.
#pragma once

#include <cstddef>
#include <memory>

#include "support/cancellation.hpp"
#include "tuner/evaluator.hpp"

namespace portatune {
class ThreadPool;
}

namespace portatune::tuner {

struct ParallelOptions {
  /// Worker threads; 0 means hardware_concurrency, 1 disables the pool
  /// (pure pass-through, useful for serial-vs-parallel parity baselines).
  std::size_t threads = 0;
  /// Window width advertised to searches via capabilities();
  /// 0 means 2x the worker count (keeps the pool busy across the tail of
  /// a window whose evaluations have uneven cost).
  std::size_t batch_width = 0;
  /// Cooperative cancellation (graceful shutdown): once cancelled,
  /// evaluate_batch stops starting evaluations and returns the clean
  /// *prefix* of results whose evaluations all ran — the search accounts
  /// them in draw order and stops at a consistent, checkpointable point.
  /// Invalid (default) = never cancelled.
  CancellationToken cancel{};
  /// Per-evaluation deadline registered with the EvalWatchdog (0 = off).
  /// Each evaluation runs under a watched per-eval cancellation domain,
  /// so a cooperatively hung evaluation is woken (and reported as
  /// eval.hang_detected) at the deadline instead of stalling its batch
  /// window for the hang's full duration. Layers below may enforce their
  /// own (typically shorter) deadlines; the innermost one wins.
  double eval_deadline_seconds = 0.0;
};

/// Decorator fanning evaluate_batch() out over a thread pool with
/// deterministic (batch-order) results. The inner evaluator must outlive
/// this object.
class ParallelEvaluator final : public Evaluator {
 public:
  explicit ParallelEvaluator(Evaluator& inner, ParallelOptions opt = {});
  ~ParallelEvaluator() override;

  const ParamSpace& space() const override { return inner_.space(); }
  EvalResult evaluate(const ParamConfig& config) override {
    return inner_.evaluate(config);
  }
  std::vector<EvalResult> evaluate_batch(
      std::span<const ParamConfig> batch) override;
  EvalCapabilities capabilities() const override;
  Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  /// Worker threads actually running (1 when the fan-out is disabled
  /// because the inner evaluator is not thread-safe or threads == 1).
  std::size_t threads() const noexcept;

 private:
  Evaluator& inner_;
  ParallelOptions opt_;
  /// Present only when fanning out is both requested and safe.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace portatune::tuner
