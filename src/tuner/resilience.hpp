// Resilient evaluation: the fault-tolerance layer between search
// algorithms and evaluation backends.
//
// Real autotuning evaluations fail routinely — per-variant compilation
// crashes, kernels segfault or hang on bad tile/unroll combinations, and
// measurements spike under system noise. This header provides:
//
//   * RetryPolicy / ResilientEvaluator — a decorator that retries
//     transient failures with exponential backoff, enforces a wall-clock
//     deadline per evaluation (watchdog thread), classifies failures
//     (transient vs. deterministic vs. timeout), and quarantines
//     configurations known to fail deterministically so they are never
//     re-evaluated.
//   * FailureBudget / FailureBudgetTracker — a bound on consecutive and
//     total failed evaluations threaded through every search algorithm,
//     so a persistently failing evaluator terminates the search with a
//     diagnostic instead of silently scanning the whole space.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuner/evaluator.hpp"

namespace portatune {
class ThreadPool;
}

namespace portatune::tuner {

/// Bound on failed evaluations a search may absorb before aborting.
/// Defaults are generous but finite: a dead evaluator stops the search
/// after max_consecutive failures instead of draining the draw budget.
struct FailureBudget {
  std::size_t max_consecutive = 50;  ///< abort after this many in a row
  std::size_t max_total = 1000;      ///< abort after this many overall
};

/// Tracks a search's failure budget. Searches call note() with every
/// evaluation result; once it returns true (budget newly exhausted) the
/// search must stop and record reason() on its trace.
class FailureBudgetTracker {
 public:
  explicit FailureBudgetTracker(const FailureBudget& budget)
      : budget_(budget) {}

  /// Account one evaluation; returns true when this result exhausted the
  /// budget (the caller should abort the search).
  bool note(const EvalResult& r) {
    if (r.ok) {
      consecutive_ = 0;
      return false;
    }
    ++consecutive_;
    ++total_;
    return exhausted();
  }

  bool exhausted() const noexcept {
    return consecutive_ >= budget_.max_consecutive ||
           total_ >= budget_.max_total;
  }

  std::size_t consecutive_failures() const noexcept { return consecutive_; }
  std::size_t total_failures() const noexcept { return total_; }

  /// Seed the total-failure counter from a restored checkpoint so a
  /// resumed search aborts at the same point an uninterrupted one would.
  /// Checkpoints are taken right after a successful evaluation, so the
  /// consecutive streak restarts at zero.
  void restore_total(std::size_t total) noexcept { total_ = total; }

  /// Diagnostic for SearchTrace::set_stop_reason.
  std::string reason() const;

 private:
  FailureBudget budget_;
  std::size_t consecutive_ = 0;
  std::size_t total_ = 0;
};

/// Retry / timeout policy of a ResilientEvaluator.
struct RetryPolicy {
  /// Attempts per evaluate() call (first try included). Only transient
  /// failures are retried; deterministic failures and timeouts are not.
  std::size_t max_attempts = 3;
  /// Backoff charged before the second attempt, in seconds; doubles every
  /// further retry (capped). Charged to EvalResult::overhead_seconds so
  /// search-time metrics see it; actually slept only when sleep_on_backoff.
  double backoff_initial = 0.001;
  double backoff_multiplier = 2.0;
  double backoff_max = 1.0;
  /// Sleep the backoff for real (live systems). Off by default: simulated
  /// backends are deterministic, sleeping would only slow tests down.
  bool sleep_on_backoff = false;
  /// Wall-clock deadline per attempt, in seconds; 0 disables the watchdog.
  /// A timed-out attempt is abandoned (its worker thread is reaped on
  /// destruction — the inner evaluator must eventually return).
  double timeout_seconds = 0.0;
  /// Quarantine configurations whose failure is deterministic / timed out /
  /// still transient after max_attempts.
  bool quarantine_deterministic = true;
  bool quarantine_timeout = true;
  bool quarantine_exhausted = true;
};

/// Counters exposed by ResilientEvaluator::stats().
struct ResilienceStats {
  std::size_t calls = 0;         ///< evaluate() invocations
  std::size_t attempts = 0;      ///< backend attempts actually made
  std::size_t successes = 0;     ///< calls that returned ok
  std::size_t retries = 0;       ///< attempts beyond the first, per call
  std::size_t transient_failures = 0;
  std::size_t deterministic_failures = 0;
  std::size_t timeouts = 0;
  std::size_t quarantine_hits = 0;  ///< calls rejected by the quarantine
  std::size_t quarantined = 0;      ///< configurations ever quarantined
  double backoff_seconds = 0.0;     ///< total backoff charged
};

/// Decorator adding retry, deadline, and quarantine semantics to any
/// Evaluator. The inner evaluator must outlive this object; when a
/// deadline is configured, destruction additionally waits for any
/// abandoned (timed-out) attempts to finish.
///
/// Thread safety: the quarantine set and the statistics are guarded by an
/// internal mutex, so evaluate() may be called concurrently (e.g. from a
/// ParallelEvaluator stacked on top) as long as the inner evaluator is
/// itself thread-safe; capabilities() forwards the inner evaluator's
/// answer. Quarantine semantics stay exact under concurrency: two threads
/// racing the same deterministically failing configuration both fail, and
/// exactly one insertion is counted.
class ResilientEvaluator final : public Evaluator {
 public:
  explicit ResilientEvaluator(Evaluator& inner, RetryPolicy policy = {});
  ~ResilientEvaluator() override;

  const ParamSpace& space() const override { return inner_.space(); }
  EvalResult evaluate(const ParamConfig& config) override;
  EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  const RetryPolicy& policy() const noexcept { return policy_; }
  /// Point-in-time copy (the counters move concurrently under a
  /// ParallelEvaluator).
  ResilienceStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

  bool is_quarantined(const ParamConfig& config) const;
  std::size_t quarantine_size() const {
    std::lock_guard lock(mutex_);
    return quarantine_.size();
  }

  /// Quarantined configuration hashes, sorted (stable for checkpoints).
  std::vector<std::uint64_t> quarantined_hashes() const;
  /// Merge previously checkpointed quarantine hashes (reason unknown ->
  /// recorded as Deterministic).
  void restore_quarantine(const std::vector<std::uint64_t>& hashes);

 private:
  EvalResult attempt(const ParamConfig& config);
  void quarantine(std::uint64_t hash, FailureKind kind);

  Evaluator& inner_;
  RetryPolicy policy_;
  /// Guards stats_ and quarantine_ (sharded finer only if contention ever
  /// shows up in bench_micro's parallel-search benchmarks; evaluations
  /// dominate by orders of magnitude).
  mutable std::mutex mutex_;
  ResilienceStats stats_;
  std::unordered_map<std::uint64_t, FailureKind> quarantine_;
  /// Watchdog workers (created lazily when timeout_seconds > 0).
  std::unique_ptr<ThreadPool> watchdog_;
};

}  // namespace portatune::tuner
