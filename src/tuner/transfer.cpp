#include "tuner/transfer.hpp"

#include "obs/scoped_timer.hpp"
#include "support/error.hpp"

namespace portatune::tuner {

ml::RegressorPtr fit_surrogate(const SearchTrace& source,
                               const ParamSpace& space,
                               const ml::ForestParams& params) {
  PT_REQUIRE(!source.empty(), "cannot fit a surrogate on an empty trace");
  obs::ScopedTimer span("transfer.fit_surrogate", "ml",
                        {{"source_machine", source.machine()},
                         {"problem", source.problem()},
                         {"rows", source.size()},
                         {"trees", params.num_trees}});
  auto model = std::make_unique<ml::RandomForest>(params);
  model->fit(source.to_dataset(space));
  return model;
}

void fit_surrogate_into(ml::Regressor& model, const SearchTrace& source,
                        const ParamSpace& space) {
  PT_REQUIRE(!source.empty(), "cannot fit a surrogate on an empty trace");
  obs::ScopedTimer span("transfer.fit_surrogate", "ml",
                        {{"source_machine", source.machine()},
                         {"problem", source.problem()},
                         {"rows", source.size()}});
  model.fit(source.to_dataset(space));
}

ml::Dataset hybrid_dataset(const SearchTrace* source,
                           const SearchTrace& target,
                           const ParamSpace& space,
                           std::size_t target_weight) {
  PT_REQUIRE(target_weight > 0, "target weight must be positive");
  ml::Dataset data(space.num_params(), space.names());
  if (source != nullptr)
    for (const auto& e : source->entries())
      data.add_row(space.features(e.config), e.seconds);
  for (const auto& e : target.entries())
    for (std::size_t w = 0; w < target_weight; ++w)
      data.add_row(space.features(e.config), e.seconds);
  return data;
}

ml::RegressorPtr fit_hybrid_surrogate(const SearchTrace* source,
                                      const SearchTrace& target,
                                      const ParamSpace& space,
                                      std::size_t target_weight,
                                      const ml::ForestParams& params) {
  const auto data = hybrid_dataset(source, target, space, target_weight);
  PT_REQUIRE(!data.empty(), "cannot fit a hybrid surrogate with no rows");
  obs::ScopedTimer span("transfer.fit_hybrid", "ml",
                        {{"source_rows",
                          source != nullptr ? source->size()
                                            : std::size_t{0}},
                         {"target_rows", target.size()},
                         {"target_weight", target_weight},
                         {"training_rows", data.num_rows()}});
  auto model = std::make_unique<ml::RandomForest>(params);
  model->fit(data);
  return model;
}

}  // namespace portatune::tuner
