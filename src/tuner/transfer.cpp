#include "tuner/transfer.hpp"

#include "obs/scoped_timer.hpp"
#include "support/error.hpp"

namespace portatune::tuner {

ml::RegressorPtr fit_surrogate(const SearchTrace& source,
                               const ParamSpace& space,
                               const ml::ForestParams& params) {
  PT_REQUIRE(!source.empty(), "cannot fit a surrogate on an empty trace");
  obs::ScopedTimer span("transfer.fit_surrogate", "ml",
                        {{"source_machine", source.machine()},
                         {"problem", source.problem()},
                         {"rows", source.size()},
                         {"trees", params.num_trees}});
  auto model = std::make_unique<ml::RandomForest>(params);
  model->fit(source.to_dataset(space));
  return model;
}

void fit_surrogate_into(ml::Regressor& model, const SearchTrace& source,
                        const ParamSpace& space) {
  PT_REQUIRE(!source.empty(), "cannot fit a surrogate on an empty trace");
  obs::ScopedTimer span("transfer.fit_surrogate", "ml",
                        {{"source_machine", source.machine()},
                         {"problem", source.problem()},
                         {"rows", source.size()}});
  model.fit(source.to_dataset(space));
}

}  // namespace portatune::tuner
