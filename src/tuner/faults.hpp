// Deterministic fault injection for testing search resilience.
//
// FaultInjectingEvaluator wraps any Evaluator and injects the failure
// modes real autotuning backends exhibit — transient failures (system
// noise, racing processes), deterministic per-configuration failures
// (variants that never compile or always segfault), simulated hangs
// (kernels that never return), and noise-spike outliers (measurements
// polluted by interference).
//
// Every injection decision is a pure hash of (seed, configuration, and the
// per-configuration attempt index) — never of global call order — so a
// fault schedule is reproducible bit-for-bit across runs, a retried
// configuration deterministically recovers (or not), and a checkpointed
// search resumes against the identical fault sequence.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tuner/evaluator.hpp"

namespace portatune::tuner {

/// Injection rates (each in [0, 1]) and shaping knobs.
struct FaultProfile {
  double transient_rate = 0.0;      ///< per-attempt chance of transient failure
  double deterministic_rate = 0.0;  ///< per-config chance of permanent failure
  /// Per-attempt chance of a *hang*: the attempt stalls (parked on the
  /// ambient CancellationToken) until a watchdog/shutdown cancel wakes it
  /// or hang_stall_seconds elapse, and then — either way — returns a
  /// Timeout-classified failure without ever reaching the inner
  /// evaluator. The result is identical whether a watchdog rescued the
  /// stall early or it ran its full course, so traces stay deterministic
  /// regardless of watchdog timing.
  double hang_rate = 0.0;
  double hang_stall_seconds = 30.0;  ///< max real wall-clock stall per hang
  /// Per-attempt chance of a latency injection: sleep delay_seconds of
  /// real time, then evaluate normally. Slow motion for chaos testing
  /// (--slow) and the latency-bound micro-benchmarks; never changes the
  /// result.
  double delay_rate = 0.0;
  double delay_seconds = 0.05;
  double spike_rate = 0.0;          ///< per-attempt chance of a noise outlier
  double spike_factor = 10.0;       ///< outlier multiplier on the run time
  std::uint64_t seed = 1;           ///< fault-schedule seed
};

struct FaultStats {
  std::size_t calls = 0;
  std::size_t transient_injected = 0;
  std::size_t deterministic_injected = 0;
  std::size_t hangs_injected = 0;
  std::size_t delays_injected = 0;
  std::size_t spikes_injected = 0;
};

/// Parse a CLI fault spec onto `base`. A bare number ("0.1") is the
/// historic spelling for the transient rate; otherwise a comma list of
/// key:value pairs — transient, deterministic (det), hang, hang-stall,
/// delay, delay-seconds, spike, spike-factor, seed. Example:
/// "transient:0.1,hang:0.05,hang-stall:2". Throws portatune::Error on
/// unknown keys or unparsable values; rates are validated by the
/// FaultInjectingEvaluator constructor.
FaultProfile parse_fault_spec(const std::string& spec,
                              FaultProfile base = {});

class FaultInjectingEvaluator final : public Evaluator {
 public:
  /// The inner evaluator must outlive this decorator.
  FaultInjectingEvaluator(Evaluator& inner, FaultProfile profile);

  const ParamSpace& space() const override { return inner_.space(); }
  EvalResult evaluate(const ParamConfig& config) override;
  /// Thread-safe when the inner evaluator is: the per-config attempt
  /// counters are mutex-guarded, and fault draws stay deterministic under
  /// concurrency because they key on the per-*configuration* attempt
  /// index, never on global call order.
  EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  const FaultProfile& profile() const noexcept { return profile_; }
  /// Point-in-time copy (the counters move concurrently under a
  /// ParallelEvaluator).
  FaultStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

  /// True when the profile condemns this configuration permanently
  /// (independent of call history — a pure function of seed and config).
  bool is_deterministically_failing(const ParamConfig& config) const;

 private:
  Evaluator& inner_;
  FaultProfile profile_;
  /// Guards stats_ and attempt_counts_.
  mutable std::mutex mutex_;
  FaultStats stats_;
  /// evaluate() calls seen per configuration hash; the attempt index keys
  /// the per-attempt fault channels so retries see fresh (but still
  /// deterministic) draws.
  std::unordered_map<std::uint64_t, std::uint64_t> attempt_counts_;
};

}  // namespace portatune::tuner
