// Deterministic fault injection for testing search resilience.
//
// FaultInjectingEvaluator wraps any Evaluator and injects the failure
// modes real autotuning backends exhibit — transient failures (system
// noise, racing processes), deterministic per-configuration failures
// (variants that never compile or always segfault), simulated hangs
// (kernels that never return), and noise-spike outliers (measurements
// polluted by interference).
//
// Every injection decision is a pure hash of (seed, configuration, and the
// per-configuration attempt index) — never of global call order — so a
// fault schedule is reproducible bit-for-bit across runs, a retried
// configuration deterministically recovers (or not), and a checkpointed
// search resumes against the identical fault sequence.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "tuner/evaluator.hpp"

namespace portatune::tuner {

/// Injection rates (each in [0, 1]) and shaping knobs.
struct FaultProfile {
  double transient_rate = 0.0;      ///< per-attempt chance of transient failure
  double deterministic_rate = 0.0;  ///< per-config chance of permanent failure
  double hang_rate = 0.0;           ///< per-attempt chance of a simulated hang
  double hang_seconds = 0.05;       ///< real wall-clock duration of a hang
  double spike_rate = 0.0;          ///< per-attempt chance of a noise outlier
  double spike_factor = 10.0;       ///< outlier multiplier on the run time
  std::uint64_t seed = 1;           ///< fault-schedule seed
};

struct FaultStats {
  std::size_t calls = 0;
  std::size_t transient_injected = 0;
  std::size_t deterministic_injected = 0;
  std::size_t hangs_injected = 0;
  std::size_t spikes_injected = 0;
};

class FaultInjectingEvaluator final : public Evaluator {
 public:
  /// The inner evaluator must outlive this decorator.
  FaultInjectingEvaluator(Evaluator& inner, FaultProfile profile);

  const ParamSpace& space() const override { return inner_.space(); }
  EvalResult evaluate(const ParamConfig& config) override;
  /// Thread-safe when the inner evaluator is: the per-config attempt
  /// counters are mutex-guarded, and fault draws stay deterministic under
  /// concurrency because they key on the per-*configuration* attempt
  /// index, never on global call order.
  EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  const FaultProfile& profile() const noexcept { return profile_; }
  /// Point-in-time copy (the counters move concurrently under a
  /// ParallelEvaluator).
  FaultStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

  /// True when the profile condemns this configuration permanently
  /// (independent of call history — a pure function of seed and config).
  bool is_deterministically_failing(const ParamConfig& config) const;

 private:
  Evaluator& inner_;
  FaultProfile profile_;
  /// Guards stats_ and attempt_counts_.
  mutable std::mutex mutex_;
  FaultStats stats_;
  /// evaluate() calls seen per configuration hash; the attempt index keys
  /// the per-attempt fault channels so retries see fresh (but still
  /// deterministic) draws.
  std::unordered_map<std::uint64_t, std::uint64_t> attempt_counts_;
};

}  // namespace portatune::tuner
