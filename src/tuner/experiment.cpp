#include "tuner/experiment.hpp"

#include <algorithm>
#include <thread>

#include "obs/scoped_timer.hpp"
#include "support/correlation.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "tuner/random_search.hpp"
#include "tuner/session.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {

SearchTrace run_reference_rs(Evaluator& eval,
                             const ExperimentSettings& settings) {
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = settings.nmax;
  rs_opt.seed = settings.seed;
  rs_opt.failure_budget = settings.failure_budget;
  rs_opt.cancel = settings.cancel;
  return random_search(eval, rs_opt);
}

TransferExperimentResult run_transfer_experiment(
    Evaluator& source, Evaluator& target,
    const ExperimentSettings& settings) {
  // Thin adapter over the session engine (tuner/session.cpp): the
  // protocol body moved there verbatim, so every trace, hook call, and
  // journal artifact is bit-identical to the historical free function —
  // the session wrapper only adds lifecycle events around it.
  ExperimentSession session(source, target, settings);
  return session.run();
}


void finalize_transfer_result(TransferExperimentResult& out) {
  // 6. Metrics.
  out.pruned_speedup = compare_to_rs(out.target_rs, out.pruned);
  out.biased_speedup = compare_to_rs(out.target_rs, out.biased);
  out.pruned_mf_speedup = compare_to_rs(out.target_rs, out.pruned_mf);
  out.biased_mf_speedup = compare_to_rs(out.target_rs, out.biased_mf);

  // Correlations over the shared configurations. The replay may have
  // skipped failed evaluations, so join on the draw index.
  std::vector<double> ya, yb;
  std::size_t ti = 0;
  for (std::size_t si = 0; si < out.source_rs.size(); ++si) {
    while (ti < out.target_rs.size() &&
           out.target_rs.entry(ti).draw_index < si)
      ++ti;
    if (ti >= out.target_rs.size()) break;
    if (out.target_rs.entry(ti).draw_index == si) {
      ya.push_back(out.source_rs.entry(si).seconds);
      yb.push_back(out.target_rs.entry(ti).seconds);
    }
  }
  if (ya.size() >= 2) {
    out.pearson = pearson(ya, yb);
    out.spearman = spearman(ya, yb);
    out.top_overlap = top_set_overlap(ya, yb, 0.2);
  }

  // 7. Failure accounting over all six traces (idempotent: reset first so
  // re-finalizing a restored cell does not double-count).
  out.failures = FailureStats{};
  out.aborted_searches.clear();
  for (const SearchTrace* t :
       {&out.source_rs, &out.target_rs, &out.pruned, &out.biased,
        &out.pruned_mf, &out.biased_mf}) {
    out.failures += t->failure_stats();
    if (!t->stop_reason().empty())
      out.aborted_searches.push_back(t->algorithm() + ": " +
                                     t->stop_reason());
  }

  // 8. Attach the observability snapshot so the report is self-contained.
  out.metrics = obs::MetricsRegistry::current().snapshot();
}

std::vector<TransferExperimentResult> run_transfer_experiments(
    std::span<const ExperimentJob> jobs, std::size_t threads) {
  std::vector<TransferExperimentResult> out(jobs.size());
  if (jobs.empty()) return out;

  const auto run_job = [&](std::size_t i) {
    const ExperimentJob& job = jobs[i];
    PT_REQUIRE(job.make_source && job.make_target,
               "experiment job '" + job.label + "' is missing a factory");
    // One causal span per cell, opened on the worker that runs it: the
    // whole experiment (its transfer span, phases, windows, evaluations)
    // nests under the cell, so a trace of a Table IV/V run attributes
    // every worker-side event to its grid cell by label.
    obs::ScopedTimer cell_span("experiment.cell", "experiment",
                               {{"label", job.label},
                                {"cell", static_cast<std::uint64_t>(i)}});
    // Built here, on the worker, so the whole evaluator stack is private
    // to this job. Results land by index: job order, never finish order.
    EvaluatorPtr source = job.make_source();
    EvaluatorPtr target = job.make_target();
    out[i] = run_transfer_experiment(*source, *target, job.settings);
  };

  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, jobs.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
    return out;
  }
  // A dedicated pool, not ThreadPool::global(): experiment cells are
  // long-running and would otherwise starve the fine-grained prediction
  // fan-outs the searches themselves put on the global pool.
  ThreadPool pool(threads);
  pool.parallel_for(0, jobs.size(), run_job);
  return out;
}

}  // namespace portatune::tuner
