#include "tuner/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "obs/scoped_timer.hpp"
#include "support/correlation.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {

namespace {

void require_same_space(const ParamSpace& a, const ParamSpace& b) {
  PT_REQUIRE(a.num_params() == b.num_params(),
             "source/target parameter spaces differ in arity");
  for (std::size_t i = 0; i < a.num_params(); ++i) {
    PT_REQUIRE(a.param(i).name == b.param(i).name &&
                   a.param(i).values == b.param(i).values,
               "source/target parameter spaces differ at parameter " +
                   a.param(i).name);
  }
}

}  // namespace

SearchTrace run_reference_rs(Evaluator& eval,
                             const ExperimentSettings& settings) {
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = settings.nmax;
  rs_opt.seed = settings.seed;
  rs_opt.failure_budget = settings.failure_budget;
  rs_opt.cancel = settings.cancel;
  return random_search(eval, rs_opt);
}

TransferExperimentResult run_transfer_experiment(
    Evaluator& source, Evaluator& target,
    const ExperimentSettings& settings) {
  require_same_space(source.space(), target.space());

  TransferExperimentResult out;
  obs::ScopedTimer experiment_span(
      "experiment.transfer", "experiment",
      {{"problem", source.problem_name()},
       {"source", source.machine_name()},
       {"target", target.machine_name()},
       {"nmax", settings.nmax}});
  const auto phase = [&](const char* name) {
    return obs::ScopedTimer(std::string("phase.") + name, "experiment");
  };

  // Run one named search phase: try the restore hook first, then check
  // for cancellation, then run. A phase whose trace carries the
  // cancellation stop reason (or that never started) flips `interrupted`,
  // which short-circuits every later phase — the caller gets back exactly
  // the completed prefix of the protocol plus the partial phase's trace.
  const auto run_phase = [&](const char* name, SearchTrace& slot,
                             auto&& body) {
    if (out.interrupted) return;
    if (settings.hooks.restore_phase) {
      if (std::optional<SearchTrace> restored =
              settings.hooks.restore_phase(name)) {
        slot = std::move(*restored);
        return;
      }
    }
    if (settings.cancel.cancelled()) {
      out.interrupted = true;
      return;
    }
    {
      auto span = phase(name);
      slot = body();
    }
    if (slot.stop_reason() == kCancelledStopReason) {
      out.interrupted = true;
      return;
    }
    if (settings.hooks.phase_done) settings.hooks.phase_done(name, slot);
  };

  // 1. RS on the source machine -> T_a. This is the long phase, so it is
  // additionally checkpointed mid-flight through the rs_* hooks.
  std::optional<SearchCheckpoint> rs_snapshot;
  run_phase("source_rs", out.source_rs, [&] {
    RandomSearchOptions rs_opt;
    rs_opt.max_evals = settings.nmax;
    rs_opt.seed = settings.seed;
    rs_opt.failure_budget = settings.failure_budget;
    rs_opt.cancel = settings.cancel;
    rs_opt.checkpoint_every = settings.hooks.rs_checkpoint_every;
    rs_opt.on_checkpoint = settings.hooks.rs_checkpoint;
    if (settings.hooks.rs_resume) {
      rs_snapshot = settings.hooks.rs_resume();
      if (rs_snapshot) rs_opt.resume = &*rs_snapshot;
    }
    return random_search(source, rs_opt);
  });
  if (out.interrupted) return out;
  PT_REQUIRE(!out.source_rs.empty(), "source RS produced no evaluations");

  // 2. RS on the target machine, replaying the source order (CRN).
  run_phase("target_rs", out.target_rs, [&] {
    std::vector<ParamConfig> order;
    order.reserve(out.source_rs.size());
    for (const auto& e : out.source_rs.entries()) order.push_back(e.config);
    return replay_search(target, order, settings.nmax, "RS",
                         settings.failure_budget, settings.cancel);
  });
  if (out.interrupted) return out;

  // 3. Fit the surrogate M_a on T_a.
  ml::ForestParams fp = settings.forest;
  fp.seed = settings.seed;
  ml::RegressorPtr model;
  {
    auto span = phase("fit");
    model = fit_surrogate(out.source_rs, source.space(), fp);
  }

  // 4. Model-based variants on the target machine. When the guard is on,
  // its refits train on T_a + accumulated target rows, and every state
  // transition lands on the result's guard_log tagged with the search
  // that fired it.
  const auto guard_for = [&](const char* algo) {
    GuardOptions g = settings.guard;
    if (!g.enabled) return g;
    g.refit_source = &out.source_rs;
    g.refit_forest = settings.forest;
    g.refit_forest.seed = settings.seed;
    g.on_transition = [&out, algo](const GuardTransition& tr) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%s: %s->%s @%zu (%s, trust=%.3f)", algo,
                    to_string(tr.from), to_string(tr.to), tr.evals,
                    tr.reason.c_str(), tr.trust);
      out.guard_log.emplace_back(line);
    };
    return g;
  };

  run_phase("pruned", out.pruned, [&] {
    PrunedSearchOptions p_opt;
    p_opt.max_evals = settings.nmax;
    p_opt.pool_size = settings.pool_size;
    p_opt.delta_percent = settings.delta_percent;
    p_opt.seed = settings.seed;
    p_opt.failure_budget = settings.failure_budget;
    p_opt.guard = guard_for("RS_p");
    p_opt.cancel = settings.cancel;
    return pruned_random_search(target, *model, p_opt);
  });

  run_phase("biased", out.biased, [&] {
    BiasedSearchOptions b_opt;
    b_opt.max_evals = settings.nmax;
    b_opt.pool_size = settings.pool_size;
    b_opt.seed = settings.seed;
    b_opt.failure_budget = settings.failure_budget;
    b_opt.guard = guard_for("RS_b");
    b_opt.cancel = settings.cancel;
    return biased_random_search(target, *model, b_opt);
  });

  // 5. Model-free controls, restricted to T_a's configurations.
  run_phase("pruned_mf", out.pruned_mf, [&] {
    return model_free_pruned(target, out.source_rs, settings.delta_percent,
                             SIZE_MAX, settings.failure_budget,
                             settings.cancel);
  });
  run_phase("biased_mf", out.biased_mf, [&] {
    return model_free_biased(target, out.source_rs, SIZE_MAX,
                             settings.failure_budget, settings.cancel);
  });
  if (out.interrupted) return out;

  // 6-8. Derived metrics, computed only for complete runs.
  auto metrics_span = phase("metrics");
  finalize_transfer_result(out);
  return out;
}

void finalize_transfer_result(TransferExperimentResult& out) {
  // 6. Metrics.
  out.pruned_speedup = compare_to_rs(out.target_rs, out.pruned);
  out.biased_speedup = compare_to_rs(out.target_rs, out.biased);
  out.pruned_mf_speedup = compare_to_rs(out.target_rs, out.pruned_mf);
  out.biased_mf_speedup = compare_to_rs(out.target_rs, out.biased_mf);

  // Correlations over the shared configurations. The replay may have
  // skipped failed evaluations, so join on the draw index.
  std::vector<double> ya, yb;
  std::size_t ti = 0;
  for (std::size_t si = 0; si < out.source_rs.size(); ++si) {
    while (ti < out.target_rs.size() &&
           out.target_rs.entry(ti).draw_index < si)
      ++ti;
    if (ti >= out.target_rs.size()) break;
    if (out.target_rs.entry(ti).draw_index == si) {
      ya.push_back(out.source_rs.entry(si).seconds);
      yb.push_back(out.target_rs.entry(ti).seconds);
    }
  }
  if (ya.size() >= 2) {
    out.pearson = pearson(ya, yb);
    out.spearman = spearman(ya, yb);
    out.top_overlap = top_set_overlap(ya, yb, 0.2);
  }

  // 7. Failure accounting over all six traces (idempotent: reset first so
  // re-finalizing a restored cell does not double-count).
  out.failures = FailureStats{};
  out.aborted_searches.clear();
  for (const SearchTrace* t :
       {&out.source_rs, &out.target_rs, &out.pruned, &out.biased,
        &out.pruned_mf, &out.biased_mf}) {
    out.failures += t->failure_stats();
    if (!t->stop_reason().empty())
      out.aborted_searches.push_back(t->algorithm() + ": " +
                                     t->stop_reason());
  }

  // 8. Attach the observability snapshot so the report is self-contained.
  out.metrics = obs::MetricsRegistry::current().snapshot();
}

std::vector<TransferExperimentResult> run_transfer_experiments(
    std::span<const ExperimentJob> jobs, std::size_t threads) {
  std::vector<TransferExperimentResult> out(jobs.size());
  if (jobs.empty()) return out;

  const auto run_job = [&](std::size_t i) {
    const ExperimentJob& job = jobs[i];
    PT_REQUIRE(job.make_source && job.make_target,
               "experiment job '" + job.label + "' is missing a factory");
    // One causal span per cell, opened on the worker that runs it: the
    // whole experiment (its transfer span, phases, windows, evaluations)
    // nests under the cell, so a trace of a Table IV/V run attributes
    // every worker-side event to its grid cell by label.
    obs::ScopedTimer cell_span("experiment.cell", "experiment",
                               {{"label", job.label},
                                {"cell", static_cast<std::uint64_t>(i)}});
    // Built here, on the worker, so the whole evaluator stack is private
    // to this job. Results land by index: job order, never finish order.
    EvaluatorPtr source = job.make_source();
    EvaluatorPtr target = job.make_target();
    out[i] = run_transfer_experiment(*source, *target, job.settings);
  };

  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, jobs.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
    return out;
  }
  // A dedicated pool, not ThreadPool::global(): experiment cells are
  // long-running and would otherwise starve the fine-grained prediction
  // fan-outs the searches themselves put on the global pool.
  ThreadPool pool(threads);
  pool.parallel_for(0, jobs.size(), run_job);
  return out;
}

}  // namespace portatune::tuner
