#include "tuner/parallel.hpp"

#include <algorithm>
#include <thread>

#include "support/thread_pool.hpp"

namespace portatune::tuner {

ParallelEvaluator::ParallelEvaluator(Evaluator& inner, ParallelOptions opt)
    : inner_(inner), opt_(opt) {
  std::size_t threads = opt_.threads;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads > 1 && inner_.capabilities().thread_safe)
    pool_ = std::make_unique<ThreadPool>(threads);
}

// Defined where ThreadPool is complete (unique_ptr member).
ParallelEvaluator::~ParallelEvaluator() = default;

std::size_t ParallelEvaluator::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

EvalCapabilities ParallelEvaluator::capabilities() const {
  EvalCapabilities caps = inner_.capabilities();
  if (!pool_) return caps;
  caps.preferred_batch =
      opt_.batch_width != 0 ? opt_.batch_width : 2 * pool_->size();
  return caps;
}

std::vector<EvalResult> ParallelEvaluator::evaluate_batch(
    std::span<const ParamConfig> batch) {
  if (!pool_ || batch.size() <= 1) return Evaluator::evaluate_batch(batch);
  std::vector<EvalResult> out(batch.size());
  pool_->parallel_for(0, batch.size(), [&](std::size_t i) {
    out[i] = inner_.evaluate(batch[i]);
  });
  return out;
}

}  // namespace portatune::tuner
