#include "tuner/parallel.hpp"

#include <algorithm>
#include <thread>

#include "support/thread_pool.hpp"
#include "tuner/watchdog.hpp"

namespace portatune::tuner {

ParallelEvaluator::ParallelEvaluator(Evaluator& inner, ParallelOptions opt)
    : inner_(inner), opt_(opt) {
  std::size_t threads = opt_.threads;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads > 1 && inner_.capabilities().thread_safe)
    pool_ = std::make_unique<ThreadPool>(threads);
}

// Defined where ThreadPool is complete (unique_ptr member).
ParallelEvaluator::~ParallelEvaluator() = default;

std::size_t ParallelEvaluator::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

EvalCapabilities ParallelEvaluator::capabilities() const {
  EvalCapabilities caps = inner_.capabilities();
  if (!pool_) return caps;
  caps.preferred_batch =
      opt_.batch_width != 0 ? opt_.batch_width : 2 * pool_->size();
  return caps;
}

std::vector<EvalResult> ParallelEvaluator::evaluate_batch(
    std::span<const ParamConfig> batch) {
  const auto run_one = [&](const ParamConfig& config) {
    if (opt_.eval_deadline_seconds <= 0.0) return inner_.evaluate(config);
    // Watched per-eval cancellation domain: a cooperative hang below
    // (e.g. the injected Hang fault parked on the ambient token) is woken
    // and reported at the deadline instead of stalling this slot.
    CancellationSource per_eval;
    EvalWatchdog::Ticket ticket = EvalWatchdog::global().watch(
        per_eval, opt_.eval_deadline_seconds,
        inner_.problem_name() + "@" + inner_.machine_name());
    CancellationScope scope(per_eval.token());
    return inner_.evaluate(config);
  };

  if (!pool_ || batch.size() <= 1) {
    // Serial path, cancellation-aware: stop *between* evaluations once
    // cancellation is requested and return the prefix evaluated so far.
    std::vector<EvalResult> out;
    out.reserve(batch.size());
    for (const auto& config : batch) {
      if (opt_.cancel.cancelled()) break;
      out.push_back(run_one(config));
    }
    return out;
  }

  std::vector<EvalResult> out(batch.size());
  // Which slots actually ran: workers skip (not fail) evaluations once
  // cancellation is requested, and the result vector is truncated at the
  // first skipped slot so the search still sees a clean draw-order
  // prefix — exactly what the serial path would have produced had it
  // been cancelled at that draw.
  std::vector<char> ran(batch.size(), 1);
  pool_->parallel_for(0, batch.size(), [&](std::size_t i) {
    if (opt_.cancel.cancelled()) {
      ran[i] = 0;
      return;
    }
    out[i] = run_one(batch[i]);
  });
  std::size_t keep = batch.size();
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (!ran[i]) {
      keep = i;
      break;
    }
  out.resize(keep);
  return out;
}

}  // namespace portatune::tuner
