// Search trace: the chronological record of one autotuning run.
//
// Everything downstream — T_a for surrogate fitting, the best-so-far
// curves of Figs. 3–5, and the performance / search-time speedup metrics
// of Sec. IV-D — is computed from these traces.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/param.hpp"

namespace portatune::tuner {

/// Failure accounting of one search run: every evaluation attempt is
/// counted, successful or not, so a trace reports how much of the budget
/// failures consumed (Sec. "Failure semantics" of DESIGN.md).
struct FailureStats {
  std::size_t attempts = 0;       ///< backend attempts, incl. retries
  std::size_t failures = 0;       ///< evaluations that returned !ok
  std::size_t transient = 0;      ///< ... classified transient
  std::size_t deterministic = 0;  ///< ... classified deterministic
  std::size_t timeouts = 0;       ///< ... classified timeout
  double overhead_seconds = 0.0;  ///< retry/backoff/timeout search time

  FailureStats& operator+=(const FailureStats& o) {
    attempts += o.attempts;
    failures += o.failures;
    transient += o.transient;
    deterministic += o.deterministic;
    timeouts += o.timeouts;
    overhead_seconds += o.overhead_seconds;
    return *this;
  }
};

struct TraceEntry {
  ParamConfig config;
  double seconds = 0.0;       ///< measured run time of this configuration
  double elapsed = 0.0;       ///< cumulative search time after this eval
  std::size_t draw_index = 0; ///< position in the sampling stream (CRN)
  /// Wall-clock time the entry was recorded, in seconds since the Unix
  /// epoch (0 for entries restored from files that predate the column).
  /// `elapsed` is the *simulated* search clock; this is the real one, so
  /// exports can reconstruct actual timelines.
  double wall_unix = 0.0;
};

class SearchTrace {
 public:
  SearchTrace() = default;
  SearchTrace(std::string algorithm, std::string problem, std::string machine)
      : algorithm_(std::move(algorithm)),
        problem_(std::move(problem)),
        machine_(std::move(machine)) {}

  /// Record a successful evaluation. The entry is wall-clock stamped at
  /// call time unless `wall_unix` is >= 0 (persistence passes the saved
  /// timestamp through).
  void record(ParamConfig config, double seconds, std::size_t draw_index,
              double wall_unix = -1.0);
  /// Account search time that produced no evaluation (e.g. pruned draws,
  /// model fitting); advances the search clock.
  void add_overhead(double seconds) { clock_ += seconds; }

  /// Account one evaluation result (success or failure): attempt/failure
  /// counters plus any retry/backoff/timeout overhead on the search clock.
  /// Searches call this for *every* EvalResult, then record() on success.
  void note_result(const EvalResult& r);

  const FailureStats& failure_stats() const noexcept { return failures_; }

  /// Why the search stopped early (failure budget exhausted, ...); empty
  /// for a normal completion. Emits a Warn "search.abort" event and
  /// flushes the default sink, so even a truncated run leaves a readable
  /// log of why it stopped.
  void set_stop_reason(std::string reason);
  const std::string& stop_reason() const noexcept { return stop_reason_; }

  // -- Checkpoint restore support (persistence.cpp) ---------------------
  /// Append an entry with its original elapsed timestamp (does not
  /// recompute the clock like record() does). `wall_unix` is 0 for
  /// checkpoints written before the wall-clock column existed.
  void restore_entry(ParamConfig config, double seconds, double elapsed,
                     std::size_t draw_index, double wall_unix = 0.0);
  void restore_failure_stats(const FailureStats& stats) { failures_ = stats; }
  /// Restore a checkpointed stop reason without re-announcing the abort
  /// (no event, no flush — it already happened when the run aborted).
  void restore_stop_reason(std::string reason) {
    stop_reason_ = std::move(reason);
  }
  /// Restore the search clock exactly (it may exceed the last entry's
  /// elapsed when trailing failures charged overhead).
  void restore_clock(double clock) { clock_ = clock; }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const TraceEntry& entry(std::size_t i) const { return entries_.at(i); }
  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }

  const std::string& algorithm() const noexcept { return algorithm_; }
  const std::string& problem() const noexcept { return problem_; }
  const std::string& machine() const noexcept { return machine_; }

  /// Best run time found so far (+inf when empty).
  double best_seconds() const;
  /// The configuration achieving best_seconds(); throws when empty.
  const ParamConfig& best_config() const;
  /// Elapsed search time at the moment the final best was first reached.
  double time_to_best() const;
  /// Elapsed search time when a run time <= threshold was first reached;
  /// +inf if the trace never reaches it.
  double time_to_reach(double threshold) const;
  /// Total search time (all evaluations + overhead).
  double total_time() const;

  /// (elapsed, best-so-far) series for plotting Figs. 3–5 curves.
  std::vector<std::pair<double, double>> best_curve() const;

  /// Convert to a training set T_a for the surrogate: features are the
  /// parameter *values*, the target is the run time.
  ml::Dataset to_dataset(const ParamSpace& space) const;

 private:
  std::string algorithm_, problem_, machine_;
  std::vector<TraceEntry> entries_;
  double clock_ = 0.0;  ///< cumulative search time
  FailureStats failures_;
  std::string stop_reason_;
};

}  // namespace portatune::tuner
