// Search trace: the chronological record of one autotuning run.
//
// Everything downstream — T_a for surrogate fitting, the best-so-far
// curves of Figs. 3–5, and the performance / search-time speedup metrics
// of Sec. IV-D — is computed from these traces.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "tuner/param.hpp"

namespace portatune::tuner {

struct TraceEntry {
  ParamConfig config;
  double seconds = 0.0;       ///< measured run time of this configuration
  double elapsed = 0.0;       ///< cumulative search time after this eval
  std::size_t draw_index = 0; ///< position in the sampling stream (CRN)
};

class SearchTrace {
 public:
  SearchTrace() = default;
  SearchTrace(std::string algorithm, std::string problem, std::string machine)
      : algorithm_(std::move(algorithm)),
        problem_(std::move(problem)),
        machine_(std::move(machine)) {}

  void record(ParamConfig config, double seconds, std::size_t draw_index);
  /// Account search time that produced no evaluation (e.g. pruned draws,
  /// model fitting); advances the search clock.
  void add_overhead(double seconds) { clock_ += seconds; }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const TraceEntry& entry(std::size_t i) const { return entries_.at(i); }
  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }

  const std::string& algorithm() const noexcept { return algorithm_; }
  const std::string& problem() const noexcept { return problem_; }
  const std::string& machine() const noexcept { return machine_; }

  /// Best run time found so far (+inf when empty).
  double best_seconds() const;
  /// The configuration achieving best_seconds(); throws when empty.
  const ParamConfig& best_config() const;
  /// Elapsed search time at the moment the final best was first reached.
  double time_to_best() const;
  /// Elapsed search time when a run time <= threshold was first reached;
  /// +inf if the trace never reaches it.
  double time_to_reach(double threshold) const;
  /// Total search time (all evaluations + overhead).
  double total_time() const;

  /// (elapsed, best-so-far) series for plotting Figs. 3–5 curves.
  std::vector<std::pair<double, double>> best_curve() const;

  /// Convert to a training set T_a for the surrogate: features are the
  /// parameter *values*, the target is the run time.
  ml::Dataset to_dataset(const ParamSpace& space) const;

 private:
  std::string algorithm_, problem_, machine_;
  std::vector<TraceEntry> entries_;
  double clock_ = 0.0;  ///< cumulative search time
};

}  // namespace portatune::tuner
