// Live status heartbeat of a journaled run — the third leg of run
// telemetry next to the metrics time-series and the flight recorder.
//
// A RunStatusBoard is the shared, thread-safe progress model the
// journaled fan-out updates from its phase hooks: per-cell journal
// state, the phase currently executing, evaluations done (completed
// phases plus the live RS checkpoint), and the best time seen. A
// RunStatusWriter renders the board — plus process vitals and the pool /
// guard gauges of the metrics registry — into `<run-dir>/status.json`
// every period, through atomic_write_file, so a concurrent reader
// always sees a complete document and a crashed run leaves its last
// heartbeat behind as evidence.
//
// The reader half, render_run_status(), is what `portatune_cli status
// --run-dir d` calls: strictly read-only (it never rewrites the journal
// the way RunJournal::open() does), safe to run against a live
// experiment, and able to tell three stories apart — running (fresh
// heartbeat), complete (journal all done), and dead (stale or missing
// heartbeat with unfinished cells → print the resume hint).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "tuner/run_journal.hpp"

namespace portatune::tuner {

class RunStatusBoard {
 public:
  RunStatusBoard(std::vector<std::string> labels,
                 std::size_t evals_per_cell);

  void set_state(std::size_t cell, CellState state);
  /// A phase began executing (also called for phases restored whole —
  /// pass the restored trace size straight to phase_finished after).
  void phase_started(std::size_t cell, const std::string& phase);
  void phase_finished(std::size_t cell, std::size_t evals,
                      double best_seconds);
  /// Mid-phase progress of the long source RS phase (absolute evals
  /// within the phase, from the periodic checkpoint).
  void rs_progress(std::size_t cell, std::size_t evals,
                   double best_seconds);

  struct Cell {
    std::string label;
    CellState state = CellState::Pending;
    std::string phase;  ///< current / last phase ("" = not started)
    std::size_t phases_done = 0;
    std::size_t evals_done = 0;
    double best_seconds = std::numeric_limits<double>::infinity();
  };

  struct Snapshot {
    std::vector<Cell> cells;
    std::size_t evals_per_cell = 0;
    std::size_t evals_done = 0;
    std::size_t evals_total = 0;
    std::size_t done = 0, running = 0, pending = 0;
    double best_seconds = std::numeric_limits<double>::infinity();
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Cell> cells_;
  /// Evaluations inside the currently running phase (folded into the
  /// cell's evals_done on phase_finished).
  std::vector<std::size_t> partial_;
  std::size_t evals_per_cell_;
};

/// Background heartbeat: writes status.json every period and once more
/// on destruction (the final beat records the finished state). Evals
/// throughput is smoothed across beats and turned into an ETA.
class RunStatusWriter {
 public:
  RunStatusWriter(const RunStatusBoard& board, std::string run_dir,
                  double period_seconds);
  ~RunStatusWriter();

  RunStatusWriter(const RunStatusWriter&) = delete;
  RunStatusWriter& operator=(const RunStatusWriter&) = delete;

  /// Write one beat synchronously (tests; the final beat).
  void write_now();

  static std::string status_path(const std::string& run_dir);

 private:
  void run();

  const RunStatusBoard& board_;
  std::string run_dir_;
  double period_seconds_;
  double started_wall_;
  std::mutex beat_mutex_;
  double last_beat_wall_ = -1.0;
  double last_evals_ = -1.0;
  double rate_ema_ = 0.0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// What `status --run-dir` concluded about a run directory.
enum class RunLiveness { Running, Complete, Dead };

/// Read-only status report of a run directory: journal summary,
/// heartbeat freshness, per-cell progress table, and — for a dead run —
/// the resume hint. A heartbeat older than `stale_after_seconds` (or
/// missing entirely) with unfinished cells means Dead. Throws
/// portatune::Error when the directory holds no journal at all.
RunLiveness render_run_status(std::ostream& os, const std::string& run_dir,
                              double stale_after_seconds = 10.0);

}  // namespace portatune::tuner
