// Machine-similarity quantification — the open question the paper's
// conclusion poses: "Quantification of the dissimilarity between source
// and target machines requires further investigation, and the proposed
// approach will greatly benefit from empirical methods that can assess
// the dissimilarity."
//
// The empirical method implemented here: evaluate a small shared probe
// set of configurations on both machines (a sunk cost of `probes`
// evaluations each) and summarize how the two run-time vectors relate.
// The rank correlation and top-set overlap of the probe predict whether
// a full surrogate transfer will pay off, which the advisor turns into a
// go / no-go recommendation before any model is fitted.
#pragma once

#include <span>

#include "tuner/evaluator.hpp"

namespace portatune::tuner {

struct SimilarityReport {
  std::size_t probes = 0;      ///< configurations measured on both sides
  double pearson = 0.0;
  double spearman = 0.0;
  double kendall = 0.0;
  double top_overlap = 0.0;    ///< best-20% set overlap
  /// Mean |log(t_b / t_a) - mean log ratio|: 0 when the target is a pure
  /// rescaling of the source (perfect portability of the landscape).
  double log_ratio_dispersion = 0.0;
};

struct SimilarityOptions {
  std::size_t probes = 30;
  std::uint64_t seed = 97;
  double top_fraction = 0.2;
};

/// The canonical probe stream seed. Every machine *fingerprint* (see
/// probe_configs) is measured over the same seeded draw sequence, so two
/// fingerprints taken on different machines — possibly in different
/// processes, years apart — are aligned element-for-element and can be
/// compared directly with summarize_probe_vectors.
inline constexpr std::uint64_t kFingerprintSeed = 97;

/// The first `count` draws of a canonical seeded stream over `space`:
/// the shared probe set both measure_similarity and the surrogate
/// store's machine fingerprints evaluate. Deterministic in (space, seed).
std::vector<ParamConfig> probe_configs(const ParamSpace& space,
                                       std::size_t count,
                                       std::uint64_t seed = kFingerprintSeed);

/// Summarize two aligned probe run-time vectors (the correlation core of
/// measure_similarity, reusable when one side is a *stored* fingerprint
/// rather than a live evaluator). Requires >= 3 aligned pairs.
SimilarityReport summarize_probe_vectors(std::span<const double> a,
                                         std::span<const double> b,
                                         double top_fraction = 0.2);

/// Measure the probe set on both machines and summarize.
SimilarityReport measure_similarity(Evaluator& source, Evaluator& target,
                                    const SimilarityOptions& opt = {});

enum class TransferAdvice {
  Transfer,      ///< strong rank agreement: run RS_b with the surrogate
  TransferTopOnly,  ///< weak global, strong top-set: biasing still pays
  DoNotTransfer  ///< dissimilar machines: tune from scratch
};

std::string to_string(TransferAdvice advice);

/// Thresholded recommendation from a report (thresholds calibrated on the
/// Table IV/V outcomes; see bench_similarity_advisor).
TransferAdvice advise(const SimilarityReport& report);

}  // namespace portatune::tuner
