// Machine-similarity quantification — the open question the paper's
// conclusion poses: "Quantification of the dissimilarity between source
// and target machines requires further investigation, and the proposed
// approach will greatly benefit from empirical methods that can assess
// the dissimilarity."
//
// The empirical method implemented here: evaluate a small shared probe
// set of configurations on both machines (a sunk cost of `probes`
// evaluations each) and summarize how the two run-time vectors relate.
// The rank correlation and top-set overlap of the probe predict whether
// a full surrogate transfer will pay off, which the advisor turns into a
// go / no-go recommendation before any model is fitted.
#pragma once

#include "tuner/evaluator.hpp"

namespace portatune::tuner {

struct SimilarityReport {
  std::size_t probes = 0;      ///< configurations measured on both sides
  double pearson = 0.0;
  double spearman = 0.0;
  double kendall = 0.0;
  double top_overlap = 0.0;    ///< best-20% set overlap
  /// Mean |log(t_b / t_a) - mean log ratio|: 0 when the target is a pure
  /// rescaling of the source (perfect portability of the landscape).
  double log_ratio_dispersion = 0.0;
};

struct SimilarityOptions {
  std::size_t probes = 30;
  std::uint64_t seed = 97;
  double top_fraction = 0.2;
};

/// Measure the probe set on both machines and summarize.
SimilarityReport measure_similarity(Evaluator& source, Evaluator& target,
                                    const SimilarityOptions& opt = {});

enum class TransferAdvice {
  Transfer,      ///< strong rank agreement: run RS_b with the surrogate
  TransferTopOnly,  ///< weak global, strong top-set: biasing still pays
  DoNotTransfer  ///< dissimilar machines: tune from scratch
};

std::string to_string(TransferAdvice advice);

/// Thresholded recommendation from a report (thresholds calibrated on the
/// Table IV/V outcomes; see bench_similarity_advisor).
TransferAdvice advise(const SimilarityReport& report);

}  // namespace portatune::tuner
