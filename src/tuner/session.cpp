#include "tuner/session.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {

namespace {

void require_same_space(const ParamSpace& a, const ParamSpace& b) {
  PT_REQUIRE(a.num_params() == b.num_params(),
             "source/target parameter spaces differ in arity");
  for (std::size_t i = 0; i < a.num_params(); ++i) {
    PT_REQUIRE(a.param(i).name == b.param(i).name &&
                   a.param(i).values == b.param(i).values,
               "source/target parameter spaces differ at parameter " +
                   a.param(i).name);
  }
}

/// Order-preserving batch prediction (same discipline as the search
/// loops: prediction i depends only on configs[i], so the fan-out is
/// deterministic; small pools stay serial).
std::vector<double> predict_pool(const ml::Regressor& model,
                                 const ParamSpace& space,
                                 const std::vector<ParamConfig>& configs) {
  std::vector<double> pred(configs.size());
  const auto body = [&](std::size_t i) {
    pred[i] = model.predict(space.features(configs[i]));
  };
  constexpr std::size_t kParallelThreshold = 256;
  if (configs.size() >= kParallelThreshold)
    ThreadPool::global().parallel_for(0, configs.size(), body);
  else
    for (std::size_t i = 0; i < configs.size(); ++i) body(i);
  return pred;
}

std::size_t batch_width(const Evaluator& eval) {
  return std::max<std::size_t>(1, eval.capabilities().preferred_batch);
}

std::vector<EvalResult> evaluate_window(Evaluator& eval,
                                        std::span<const ParamConfig> configs,
                                        std::size_t evals_done) {
  std::optional<obs::ScopedTimer> span;
  if (obs::enabled(obs::Severity::Debug))
    span.emplace("search.window", "search",
                 std::vector<obs::Field>{{"window", configs.size()},
                                         {"evals_done", evals_done}},
                 nullptr, obs::Severity::Debug);
  return eval.evaluate_batch(configs);
}

void emit_session_open(const std::string& id, const std::string& kind,
                       const Evaluator& eval, bool warm, bool resumed,
                       std::size_t budget) {
  obs::MetricsRegistry::current().counter("service.sessions_opened").add(1);
  if (!obs::enabled(obs::Severity::Info)) return;
  obs::emit(obs::make_instant(
      obs::Severity::Info, "session.open", "service",
      {{"id", id},
       {"kind", kind},
       {"problem", eval.problem_name()},
       {"machine", eval.machine_name()},
       {"warm", warm},
       {"resumed", resumed},
       {"budget", static_cast<std::uint64_t>(budget)}}));
}

}  // namespace

TuningSession::TuningSession(Evaluator& eval, SessionOptions opt)
    : eval_(eval),
      opt_(std::move(opt)),
      trace_(opt_.warm_model != nullptr ? "RS_b" : "RS", eval.problem_name(),
             eval.machine_name()),
      budget_(opt_.failure_budget) {
  opened_mono_ = obs::mono_now();
  if (opt_.warm_model != nullptr) {
    PT_REQUIRE(opt_.warm_model->is_fitted(),
               "warm session requires a fitted surrogate");
    obs::ScopedTimer rank_span("session.rank", "service",
                               {{"id", opt_.id},
                                {"pool_size",
                                 static_cast<std::uint64_t>(opt_.pool_size)}});
    ConfigStream stream(eval_.space(), opt_.seed);
    pool_.reserve(opt_.pool_size);
    while (pool_.size() < opt_.pool_size) {
      auto c = stream.next();
      if (!c) break;
      pool_.push_back(std::move(*c));
    }
    PT_REQUIRE(!pool_.empty(), "empty candidate pool");
    const std::vector<double> pred =
        predict_pool(*opt_.warm_model, eval_.space(), pool_);
    order_ = argsort(pred);
  } else {
    stream_ = std::make_unique<ConfigStream>(eval_.space(), opt_.seed);
  }

  if (opt_.resume != nullptr) {
    trace_ = opt_.resume->trace;
    // A cancellation marker is "interrupted", not "finished": clear it so
    // the resumed session continues where the shutdown stopped it.
    if (trace_.stop_reason() == kCancelledStopReason)
      trace_.restore_stop_reason("");
    budget_.restore_total(opt_.resume->trace.failure_stats().failures);
    if (auto* resilient = find_layer<ResilientEvaluator>(&eval_))
      resilient->restore_quarantine(opt_.resume->quarantine);
    // Outstanding suggestions survive the resume: their draws are inside
    // the replayed watermark, so without the restored pairs report()
    // would reject them and the configs would silently never evaluate.
    pending_ = opt_.resume->pending;
    consumed_ = opt_.resume->draws;
    if (stream_ != nullptr) {
      // Replay the consumed draws against the same seed: the sampler's
      // RNG state and dedup set end up exactly where the snapshot left
      // them (the RS resume discipline, random_search.cpp).
      for (std::size_t i = 0; i < consumed_; ++i)
        if (!stream_->next()) break;
    } else {
      cursor_ = std::min(consumed_, order_.size());
    }
  }
  emit_session_open(opt_.id, "tuning", eval_, warm(),
                    opt_.resume != nullptr, opt_.max_evals);
}

TuningSession::~TuningSession() {
  try {
    close();
  } catch (...) {
    // Destructor: the close span is best-effort; never propagate.
  }
}

void TuningSession::require_open(const char* op) const {
  PT_REQUIRE(!closed_,
             std::string(op) + " on closed session '" + opt_.id + "'");
}

void TuningSession::gather(std::size_t want,
                           std::vector<ParamConfig>& configs,
                           std::vector<std::size_t>& draw_idx,
                           std::vector<std::size_t>& marker) {
  configs.reserve(want);
  draw_idx.reserve(want);
  marker.reserve(want);
  if (stream_ != nullptr) {
    while (configs.size() < want) {
      auto config = stream_->next();
      if (!config) {
        exhausted_ = true;
        break;
      }
      draw_idx.push_back(stream_->produced() - 1);
      marker.push_back(stream_->produced());
      configs.push_back(std::move(*config));
    }
  } else {
    while (configs.size() < want && cursor_ < order_.size()) {
      const std::size_t pick = order_[cursor_++];
      draw_idx.push_back(pick);
      marker.push_back(cursor_);
      configs.push_back(pool_[pick]);
    }
    if (cursor_ >= order_.size() && configs.size() < want) exhausted_ = true;
  }
}

SessionStepStats TuningSession::step(std::size_t n) {
  require_open("step");
  SessionStepStats st;
  const std::size_t width = batch_width(eval_);
  const std::size_t target = std::min(n, remaining_budget());
  while (st.evaluated < target && !exhausted_ && !budget_.exhausted()) {
    if (opt_.cancel.cancelled()) {
      trace_.set_stop_reason(kCancelledStopReason);
      exhausted_ = true;
      break;
    }
    const std::size_t want = std::min(width, target - st.evaluated);
    std::vector<ParamConfig> configs;
    std::vector<std::size_t> draw_idx, marker;
    gather(want, configs, draw_idx, marker);
    if (configs.empty()) break;

    const std::vector<EvalResult> results =
        evaluate_window(eval_, configs, trace_.size());
    // Strictly draw order, regardless of completion order inside the
    // batch — the same discipline that keeps parallel traces
    // bit-identical to serial in the free-function searches.
    for (std::size_t i = 0; i < results.size(); ++i) {
      consumed_ = marker[i];
      const EvalResult& r = results[i];
      trace_.note_result(r);
      if (!r.ok) {
        ++st.failures;
        if (budget_.note(r)) {
          trace_.set_stop_reason(budget_.reason());
          exhausted_ = true;
          break;
        }
        continue;
      }
      budget_.note(r);
      trace_.record(std::move(configs[i]), r.seconds, draw_idx[i]);
      ++st.evaluated;
    }
    // A short result vector means the window was cancelled mid-flight:
    // the accounted prefix is consistent, the tail never happened (and
    // `consumed_` excludes it, so a resume re-draws those configs).
    if (results.size() < configs.size()) {
      trace_.set_stop_reason(kCancelledStopReason);
      exhausted_ = true;
      break;
    }
  }
  obs::MetricsRegistry::current()
      .counter("service.session_evals")
      .add(st.evaluated);
  st.best_seconds = trace_.best_seconds();
  st.exhausted = exhausted_ || budget_.exhausted() || remaining_budget() == 0;
  return st;
}

std::vector<ParamConfig> TuningSession::suggest(std::size_t n) {
  require_open("suggest");
  std::vector<ParamConfig> configs;
  std::vector<std::size_t> draw_idx, marker;
  gather(std::min(n, remaining_budget()), configs, draw_idx, marker);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    pending_.emplace_back(eval_.space().config_hash(configs[i]), draw_idx[i]);
    consumed_ = marker[i];
  }
  return configs;
}

void TuningSession::report(const ParamConfig& config, double seconds) {
  require_open("report");
  PT_REQUIRE(seconds > 0.0, "reported run time must be positive");
  const std::uint64_t hash = eval_.space().config_hash(config);
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const auto& p) { return p.first == hash; });
  PT_REQUIRE(it != pending_.end(),
             "reported configuration was not suggested by session '" +
                 opt_.id + "'");
  const std::size_t draw_idx = it->second;
  pending_.erase(it);
  const EvalResult r = EvalResult::success(seconds);
  trace_.note_result(r);
  budget_.note(r);
  trace_.record(config, seconds, draw_idx);
}

SearchCheckpoint TuningSession::checkpoint() const {
  SearchCheckpoint snapshot;
  snapshot.trace = trace_;
  snapshot.draws = consumed_;
  snapshot.pending = pending_;
  if (auto* resilient =
          find_layer<ResilientEvaluator>(const_cast<Evaluator*>(&eval_)))
    snapshot.quarantine = resilient->quarantined_hashes();
  return snapshot;
}

void TuningSession::close() {
  if (closed_) return;
  closed_ = true;
  obs::MetricsRegistry::current().counter("service.sessions_closed").add(1);
  if (!obs::enabled(obs::Severity::Info)) return;
  std::vector<obs::Field> fields{
      {"id", opt_.id},
      {"kind", "tuning"},
      {"evals", static_cast<std::uint64_t>(trace_.size())},
      {"failures",
       static_cast<std::uint64_t>(trace_.failure_stats().failures)},
  };
  if (!trace_.empty())
    fields.emplace_back("best_seconds", trace_.best_seconds());
  if (!trace_.stop_reason().empty())
    fields.emplace_back("stop", trace_.stop_reason());
  obs::emit(obs::make_span(obs::Severity::Info, "session.closed", "service",
                           obs::mono_now() - opened_mono_,
                           std::move(fields)));
}

// ---------------------------------------------------------------------------

ExperimentSession::ExperimentSession(Evaluator& source, Evaluator& target,
                                     const ExperimentSettings& settings,
                                     std::string id)
    : source_(source),
      target_(target),
      settings_(settings),
      id_(std::move(id)) {
  opened_mono_ = obs::mono_now();
  emit_session_open(id_, "experiment", target_, false, false,
                    settings_.nmax);
}

ExperimentSession::~ExperimentSession() {
  if (closed_) return;
  closed_ = true;
  obs::MetricsRegistry::current().counter("service.sessions_closed").add(1);
  if (!obs::enabled(obs::Severity::Info)) return;
  obs::emit(obs::make_span(obs::Severity::Info, "session.closed", "service",
                           obs::mono_now() - opened_mono_,
                           {{"id", id_}, {"kind", "experiment"}}));
}

TransferExperimentResult ExperimentSession::run() {
  PT_REQUIRE(!ran_, "ExperimentSession::run may only be called once");
  ran_ = true;
  Evaluator& source = source_;
  Evaluator& target = target_;
  const ExperimentSettings& settings = settings_;
  require_same_space(source.space(), target.space());

  TransferExperimentResult out;
  obs::ScopedTimer experiment_span(
      "experiment.transfer", "experiment",
      {{"problem", source.problem_name()},
       {"source", source.machine_name()},
       {"target", target.machine_name()},
       {"nmax", settings.nmax}});
  const auto phase = [&](const char* name) {
    return obs::ScopedTimer(std::string("phase.") + name, "experiment");
  };

  // Run one named search phase: try the restore hook first, then check
  // for cancellation, then run. A phase whose trace carries the
  // cancellation stop reason (or that never started) flips `interrupted`,
  // which short-circuits every later phase — the caller gets back exactly
  // the completed prefix of the protocol plus the partial phase's trace.
  const auto run_phase = [&](const char* name, SearchTrace& slot,
                             auto&& body) {
    if (out.interrupted) return;
    if (settings.hooks.restore_phase) {
      if (std::optional<SearchTrace> restored =
              settings.hooks.restore_phase(name)) {
        slot = std::move(*restored);
        return;
      }
    }
    if (settings.cancel.cancelled()) {
      out.interrupted = true;
      return;
    }
    {
      auto span = phase(name);
      slot = body();
    }
    if (slot.stop_reason() == kCancelledStopReason) {
      out.interrupted = true;
      return;
    }
    if (settings.hooks.phase_done) settings.hooks.phase_done(name, slot);
  };

  // 1. RS on the source machine -> T_a. This is the long phase, so it is
  // additionally checkpointed mid-flight through the rs_* hooks.
  std::optional<SearchCheckpoint> rs_snapshot;
  run_phase("source_rs", out.source_rs, [&] {
    RandomSearchOptions rs_opt;
    rs_opt.max_evals = settings.nmax;
    rs_opt.seed = settings.seed;
    rs_opt.failure_budget = settings.failure_budget;
    rs_opt.cancel = settings.cancel;
    rs_opt.checkpoint_every = settings.hooks.rs_checkpoint_every;
    rs_opt.on_checkpoint = settings.hooks.rs_checkpoint;
    if (settings.hooks.rs_resume) {
      rs_snapshot = settings.hooks.rs_resume();
      if (rs_snapshot) rs_opt.resume = &*rs_snapshot;
    }
    return random_search(source, rs_opt);
  });
  if (out.interrupted) return out;
  PT_REQUIRE(!out.source_rs.empty(), "source RS produced no evaluations");

  // 2. RS on the target machine, replaying the source order (CRN).
  run_phase("target_rs", out.target_rs, [&] {
    std::vector<ParamConfig> order;
    order.reserve(out.source_rs.size());
    for (const auto& e : out.source_rs.entries()) order.push_back(e.config);
    return replay_search(target, order, settings.nmax, "RS",
                         settings.failure_budget, settings.cancel);
  });
  if (out.interrupted) return out;

  // 3. Fit the surrogate M_a on T_a.
  ml::ForestParams fp = settings.forest;
  fp.seed = settings.seed;
  ml::RegressorPtr model;
  {
    auto span = phase("fit");
    model = fit_surrogate(out.source_rs, source.space(), fp);
  }

  // 4. Model-based variants on the target machine. When the guard is on,
  // its refits train on T_a + accumulated target rows, and every state
  // transition lands on the result's guard_log tagged with the search
  // that fired it.
  const auto guard_for = [&](const char* algo) {
    GuardOptions g = settings.guard;
    if (!g.enabled) return g;
    g.refit_source = &out.source_rs;
    g.refit_forest = settings.forest;
    g.refit_forest.seed = settings.seed;
    g.on_transition = [&out, algo](const GuardTransition& tr) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%s: %s->%s @%zu (%s, trust=%.3f)", algo,
                    to_string(tr.from), to_string(tr.to), tr.evals,
                    tr.reason.c_str(), tr.trust);
      out.guard_log.emplace_back(line);
    };
    return g;
  };

  run_phase("pruned", out.pruned, [&] {
    PrunedSearchOptions p_opt;
    p_opt.max_evals = settings.nmax;
    p_opt.pool_size = settings.pool_size;
    p_opt.delta_percent = settings.delta_percent;
    p_opt.seed = settings.seed;
    p_opt.failure_budget = settings.failure_budget;
    p_opt.guard = guard_for("RS_p");
    p_opt.cancel = settings.cancel;
    return pruned_random_search(target, *model, p_opt);
  });

  run_phase("biased", out.biased, [&] {
    BiasedSearchOptions b_opt;
    b_opt.max_evals = settings.nmax;
    b_opt.pool_size = settings.pool_size;
    b_opt.seed = settings.seed;
    b_opt.failure_budget = settings.failure_budget;
    b_opt.guard = guard_for("RS_b");
    b_opt.cancel = settings.cancel;
    return biased_random_search(target, *model, b_opt);
  });

  // 5. Model-free controls, restricted to T_a's configurations.
  run_phase("pruned_mf", out.pruned_mf, [&] {
    return model_free_pruned(target, out.source_rs, settings.delta_percent,
                             SIZE_MAX, settings.failure_budget,
                             settings.cancel);
  });
  run_phase("biased_mf", out.biased_mf, [&] {
    return model_free_biased(target, out.source_rs, SIZE_MAX,
                             settings.failure_budget, settings.cancel);
  });
  if (out.interrupted) return out;

  // 6-8. Derived metrics, computed only for complete runs.
  auto metrics_span = phase("metrics");
  finalize_transfer_result(out);
  return out;
}

}  // namespace portatune::tuner
