// Tuning sessions: the stateful core of the autotuning-as-a-service API.
//
// A *session* is one long-lived tuning conversation with an evaluator:
// instead of a free function that runs a whole search and returns, the
// caller opens a session, advances it incrementally (step), or pulls
// candidates out and pushes externally measured results back in
// (suggest / report), snapshots it for crash-safety (checkpoint), and
// finally closes it. The service layer (src/service) multiplexes many of
// these concurrently over shared infrastructure — the evaluation cache,
// the surrogate store, the thread pool — but the session state machine
// itself is plain tuner code with no service dependencies, so embedders
// can drive one directly.
//
// Two session kinds exist:
//
//   TuningSession     — single-machine incremental search. Cold sessions
//                       walk the seeded without-replacement draw stream
//                       exactly like RS; warm sessions rank a candidate
//                       pool with a surrogate handed in at open (the
//                       store's nearest-machine forest) and evaluate in
//                       ascending predicted order, exactly like RS_b.
//   ExperimentSession — the paper's six-phase transfer protocol
//                       (Sec. IV-D) wrapped in a session. The legacy
//                       free function run_transfer_experiment() is now a
//                       thin adapter that opens one of these, runs it,
//                       and returns its result — same traces, same
//                       journal artifacts, bit-for-bit.
//
// Lifecycle observability: every session emits a `session.open` instant
// at construction and a `session.closed` span (duration = session
// lifetime) at close, so the flight recorder's ring always holds the
// recent session history and a Chrome trace shows sessions as slices.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ml/model.hpp"
#include "tuner/experiment.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"
#include "tuner/sampler.hpp"
#include "tuner/search_options.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

struct SessionOptions : SearchCommon {
  /// Session label used in events and diagnostics.
  std::string id = "session";
  /// Warm start: rank `pool_size` candidates with this model and
  /// evaluate in ascending predicted order (RS_b, Algorithm 2). The
  /// model must outlive the session. nullptr = cold: plain RS draw
  /// order.
  const ml::Regressor* warm_model = nullptr;
  /// Candidate pool for the warm ranking (ignored when cold).
  std::size_t pool_size = 2000;
  /// Resume an interrupted session from its checkpoint. The same seed —
  /// and, for warm sessions, a model refit from the same stored trace —
  /// must be supplied, so the replayed draw/rank order matches exactly.
  const SearchCheckpoint* resume = nullptr;
};

/// What one step() advanced.
struct SessionStepStats {
  std::size_t evaluated = 0;   ///< new trace entries
  std::size_t failures = 0;    ///< failed evaluations this step
  double best_seconds = 0.0;   ///< session-wide best after the step
  /// True once the session can make no further progress: budget
  /// reached, stream/pool exhausted, failure budget tripped, or
  /// cancelled.
  bool exhausted = false;
};

class TuningSession {
 public:
  /// The evaluator must outlive the session.
  TuningSession(Evaluator& eval, SessionOptions opt);
  ~TuningSession();

  TuningSession(const TuningSession&) = delete;
  TuningSession& operator=(const TuningSession&) = delete;

  const std::string& id() const noexcept { return opt_.id; }
  bool warm() const noexcept { return opt_.warm_model != nullptr; }
  bool closed() const noexcept { return closed_; }

  /// Evaluate up to `n` further configurations through the session's
  /// evaluator (one batch window; the evaluator fans it out if it can).
  /// Throws after close().
  SessionStepStats step(std::size_t n);

  /// Consume and return up to `n` candidate configurations without
  /// evaluating them. The caller measures them externally and feeds the
  /// results back with report(); unreported suggestions simply never
  /// enter the trace (and never consume evaluation budget).
  std::vector<ParamConfig> suggest(std::size_t n);

  /// Record one externally measured run time for a configuration handed
  /// out by suggest(). Throws when the configuration was not suggested
  /// by this session (outstanding suggestions are part of the checkpoint,
  /// so they survive a resume).
  void report(const ParamConfig& config, double seconds);

  /// Snapshot for persistence: the trace, the number of draws / pool
  /// picks consumed, and the outstanding suggestions — exactly what
  /// SessionOptions::resume replays.
  SearchCheckpoint checkpoint() const;

  /// Close the session: emits the lifetime span, after which
  /// step/suggest/report throw. Idempotent. trace() stays readable.
  void close();

  const SearchTrace& trace() const noexcept { return trace_; }
  const Evaluator& evaluator() const noexcept { return eval_; }
  std::size_t consumed_draws() const noexcept { return consumed_; }
  std::size_t remaining_budget() const noexcept {
    return trace_.size() >= opt_.max_evals ? 0
                                           : opt_.max_evals - trace_.size();
  }

 private:
  /// Pull up to `want` fresh configurations (cold: stream draws, warm:
  /// ranked pool picks). `draw_idx[i]` is what the trace entry records
  /// (stream position / pool index, the CRN identity); `marker[i]` is the
  /// consumed-draws watermark once configs[i] is accounted — checkpoints
  /// store the marker of the last accounted result, so a window cancelled
  /// mid-flight rolls its unprocessed tail draws back, exactly like RS.
  void gather(std::size_t want, std::vector<ParamConfig>& configs,
              std::vector<std::size_t>& draw_idx,
              std::vector<std::size_t>& marker);
  void require_open(const char* op) const;

  Evaluator& eval_;
  SessionOptions opt_;
  SearchTrace trace_;
  FailureBudgetTracker budget_;
  double opened_mono_ = 0.0;
  bool closed_ = false;
  bool exhausted_ = false;
  std::size_t consumed_ = 0;  ///< draws (cold) / pool picks (warm) accounted

  // Cold path.
  std::unique_ptr<ConfigStream> stream_;

  // Warm path (RS_b-style ranked pool).
  std::vector<ParamConfig> pool_;
  std::vector<std::size_t> order_;  ///< pool indices, ascending prediction
  std::size_t cursor_ = 0;          ///< next order_ position gather takes

  /// Outstanding suggestions: config hash -> draw index, so report()
  /// stamps the entry with the same index step() would have.
  std::vector<std::pair<std::uint64_t, std::size_t>> pending_;
};

/// The six-phase transfer protocol as a session. run() executes the
/// engine exactly as the historical run_transfer_experiment did (same
/// phases, same hooks, same traces); the session wrapper adds the
/// lifecycle events and gives the service layer a handle to multiplex.
class ExperimentSession {
 public:
  /// Evaluators and settings must outlive run().
  ExperimentSession(Evaluator& source, Evaluator& target,
                    const ExperimentSettings& settings,
                    std::string id = "experiment");
  ~ExperimentSession();

  ExperimentSession(const ExperimentSession&) = delete;
  ExperimentSession& operator=(const ExperimentSession&) = delete;

  /// Execute the protocol (once). Cancellation and crash-safety hooks
  /// behave exactly as documented on ExperimentSettings.
  TransferExperimentResult run();

  const std::string& id() const noexcept { return id_; }

 private:
  Evaluator& source_;
  Evaluator& target_;
  const ExperimentSettings& settings_;
  std::string id_;
  double opened_mono_ = 0.0;
  bool ran_ = false;
  bool closed_ = false;
};

}  // namespace portatune::tuner
