#include "tuner/adaptive.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "tuner/observe.hpp"
#include "tuner/sampler.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {

SearchTrace adaptive_biased_search(Evaluator& target,
                                   const SearchTrace& source,
                                   const AdaptiveSearchOptions& opt) {
  PT_REQUIRE(opt.refit_interval > 0, "refit interval must be positive");
  PT_REQUIRE(opt.target_weight > 0, "target weight must be positive");
  SearchTrace trace("RS_b_adaptive", target.problem_name(),
                    target.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = target.space();

  // Candidate pool, sampled once (same role as X_p in Algorithm 2).
  ConfigStream stream(space, opt.seed);
  std::vector<ParamConfig> pool;
  pool.reserve(opt.pool_size);
  while (pool.size() < opt.pool_size) {
    auto c = stream.next();
    if (!c) break;
    pool.push_back(std::move(*c));
  }
  PT_REQUIRE(!pool.empty(), "empty candidate pool");
  std::vector<bool> used(pool.size(), false);

  const auto build_training_set = [&]() {
    const bool keep_source =
        opt.forget_source_after == 0 ||
        trace.size() < opt.forget_source_after;
    return hybrid_dataset(keep_source ? &source : nullptr, trace, space,
                          opt.target_weight);
  };

  ml::ForestParams fp = opt.forest;
  fp.seed = opt.seed;
  ml::RandomForest model(fp);

  std::vector<std::size_t> ranked;  // pool indices, best predicted first
  std::size_t refits = 0;
  const auto rerank = [&] {
    const auto data = build_training_set();
    if (data.empty()) {
      // Nothing to learn from yet: keep pool order (uniform random).
      ranked.resize(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) ranked[i] = i;
      return;
    }
    obs::ScopedTimer refit_span("search.refit", "search",
                                {{"refit", refits},
                                 {"training_rows", data.num_rows()},
                                 {"target_evals", trace.size()}});
    ++refits;
    obs::MetricsRegistry::current().counter("search.refits").add();
    model.fit(data);
    std::vector<double> pred(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
      pred[i] = model.predict(space.features(pool[i]));
    const auto order = argsort(pred);
    ranked.assign(order.begin(), order.end());
  };

  rerank();
  FailureBudgetTracker budget(opt.failure_budget);
  std::size_t cursor = 0;
  std::size_t since_refit = 0;
  while (trace.size() < opt.max_evals) {
    // Next unused pool candidate in predicted order.
    while (cursor < ranked.size() && used[ranked[cursor]]) ++cursor;
    if (cursor >= ranked.size()) break;  // pool exhausted
    const std::size_t pick = ranked[cursor];
    used[pick] = true;
    const EvalResult r = target.evaluate(pool[pick]);
    trace.note_result(r);
    if (budget.note(r)) {
      trace.set_stop_reason(budget.reason());
      break;
    }
    if (r.ok) {
      trace.record(pool[pick], r.seconds, pick);
      if (++since_refit >= opt.refit_interval &&
          trace.size() < opt.max_evals) {
        since_refit = 0;
        rerank();
        cursor = 0;
      }
    }
  }
  return trace;
}

}  // namespace portatune::tuner
