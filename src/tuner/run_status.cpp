#include "tuner/run_status.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace portatune::tuner {

namespace {

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Timestamps need fixed-point microseconds: %.9g collapses epoch
/// seconds (~1.7e9) to ~10-second granularity.
std::string render_stamp(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::int64_t current_pid() {
#ifndef _WIN32
  return static_cast<std::int64_t>(getpid());
#else
  return 0;
#endif
}

double find_gauge(const obs::MetricsSnapshot& m, std::string_view name,
                  double fallback) {
  for (const auto& [key, value] : m.gauges)
    if (key == name) return value;
  return fallback;
}

/// `null` for values that have no defined reading yet (no evals, no
/// throughput history) — readers must not mistake 0 or inf for data.
std::string number_or_null(double v) {
  if (!std::isfinite(v)) return "null";
  return render_double(v);
}

}  // namespace

RunStatusBoard::RunStatusBoard(std::vector<std::string> labels,
                               std::size_t evals_per_cell)
    : partial_(labels.size(), 0), evals_per_cell_(evals_per_cell) {
  cells_.reserve(labels.size());
  for (std::string& label : labels) {
    Cell cell;
    cell.label = std::move(label);
    cells_.push_back(std::move(cell));
  }
}

void RunStatusBoard::set_state(std::size_t cell, CellState state) {
  std::lock_guard lock(mutex_);
  cells_.at(cell).state = state;
}

void RunStatusBoard::phase_started(std::size_t cell,
                                   const std::string& phase) {
  std::lock_guard lock(mutex_);
  cells_.at(cell).phase = phase;
  partial_.at(cell) = 0;
}

void RunStatusBoard::phase_finished(std::size_t cell, std::size_t evals,
                                    double best_seconds) {
  std::lock_guard lock(mutex_);
  Cell& c = cells_.at(cell);
  ++c.phases_done;
  c.evals_done += evals;
  partial_.at(cell) = 0;
  if (best_seconds < c.best_seconds) c.best_seconds = best_seconds;
}

void RunStatusBoard::rs_progress(std::size_t cell, std::size_t evals,
                                 double best_seconds) {
  std::lock_guard lock(mutex_);
  Cell& c = cells_.at(cell);
  partial_.at(cell) = evals;
  if (best_seconds < c.best_seconds) c.best_seconds = best_seconds;
}

RunStatusBoard::Snapshot RunStatusBoard::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.cells = cells_;
  snap.evals_per_cell = evals_per_cell_;
  snap.evals_total = evals_per_cell_ * cells_.size();
  for (std::size_t i = 0; i < snap.cells.size(); ++i) {
    Cell& c = snap.cells[i];
    c.evals_done += partial_[i];  // fold in the live phase's progress
    snap.evals_done += c.evals_done;
    if (c.best_seconds < snap.best_seconds)
      snap.best_seconds = c.best_seconds;
    switch (c.state) {
      case CellState::Done: ++snap.done; break;
      case CellState::Running: ++snap.running; break;
      case CellState::Pending: ++snap.pending; break;
    }
  }
  return snap;
}

std::string RunStatusWriter::status_path(const std::string& run_dir) {
  return run_dir + "/status.json";
}

RunStatusWriter::RunStatusWriter(const RunStatusBoard& board,
                                 std::string run_dir, double period_seconds)
    : board_(board),
      run_dir_(std::move(run_dir)),
      period_seconds_(std::max(0.05, period_seconds)),
      started_wall_(obs::wall_unix_now()) {
  write_now();  // the run announces itself before the first cell starts
  thread_ = std::thread([this] { run(); });
}

RunStatusWriter::~RunStatusWriter() {
  {
    std::lock_guard lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final beat: the on-disk status must record the finished board, not
  // whatever the last periodic tick happened to see.
  try {
    write_now();
  } catch (const std::exception&) {
    // Teardown must not throw for a status file.
  }
}

void RunStatusWriter::run() {
  std::unique_lock lock(stop_mutex_);
  while (!stop_) {
    const auto period = std::chrono::duration<double>(period_seconds_);
    if (stop_cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    try {
      write_now();
    } catch (const std::exception&) {
      // A transient write failure skips one beat; the next tick retries.
    }
    lock.lock();
  }
}

void RunStatusWriter::write_now() {
  const RunStatusBoard::Snapshot snap = board_.snapshot();
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::current().snapshot();
  const double now = obs::wall_unix_now();

  double rate = 0.0;
  {
    std::lock_guard lock(beat_mutex_);
    const double evals = static_cast<double>(snap.evals_done);
    const double dt = now - last_beat_wall_;
    if (last_beat_wall_ >= 0.0 && dt > 0.0) {
      const double inst = std::max(0.0, evals - last_evals_) / dt;
      // Smooth across beats so one slow evaluation doesn't whipsaw the
      // ETA; seeded with the first observed rate rather than zero.
      rate_ema_ = rate_ema_ > 0.0 ? 0.7 * rate_ema_ + 0.3 * inst : inst;
    }
    last_beat_wall_ = now;
    last_evals_ = evals;
    rate = rate_ema_;
  }

  const std::size_t remaining =
      snap.evals_total > snap.evals_done
          ? snap.evals_total - snap.evals_done
          : 0;
  const double eta =
      remaining == 0
          ? 0.0
          : (rate > 1e-12 ? static_cast<double>(remaining) / rate
                          : std::numeric_limits<double>::infinity());

  std::string out = "{\"pid\":" + std::to_string(current_pid());
  out += ",\"started_wall\":" + render_stamp(started_wall_);
  out += ",\"heartbeat_wall\":" + render_stamp(now);
  out += ",\"uptime_seconds\":" + render_double(now - started_wall_);
  out += ",\"cells\":{\"total\":" + std::to_string(snap.cells.size());
  out += ",\"done\":" + std::to_string(snap.done);
  out += ",\"running\":" + std::to_string(snap.running);
  out += ",\"pending\":" + std::to_string(snap.pending) + "}";
  out += ",\"evals\":{\"done\":" + std::to_string(snap.evals_done);
  out += ",\"total\":" + std::to_string(snap.evals_total) + "}";
  out += ",\"best_seconds\":" + number_or_null(snap.best_seconds);
  out += ",\"throughput_evals_per_sec\":" + render_double(rate);
  out += ",\"eta_seconds\":" + number_or_null(eta);
  out += ",\"pool\":{\"workers_busy\":" +
         render_double(find_gauge(metrics, "pool.workers_busy", 0.0));
  out += ",\"queue_depth\":" +
         render_double(find_gauge(metrics, "pool.queue_depth", 0.0)) + "}";
  out += ",\"guard\":{\"trust\":" +
         render_double(find_gauge(metrics, "guard.trust", -1.0));
  out += ",\"state\":" +
         render_double(find_gauge(metrics, "guard.state", -1.0)) + "}";
  out += ",\"cells_detail\":[";
  for (std::size_t i = 0; i < snap.cells.size(); ++i) {
    const RunStatusBoard::Cell& c = snap.cells[i];
    if (i != 0) out += ",";
    out += "{\"label\":\"" + obs::json::escape(c.label) + "\"";
    out += ",\"state\":\"";
    out += to_string(c.state);
    out += "\",\"phase\":\"" + obs::json::escape(c.phase) + "\"";
    out += ",\"phases_done\":" + std::to_string(c.phases_done);
    out += ",\"evals_done\":" + std::to_string(c.evals_done);
    out += ",\"best_seconds\":" + number_or_null(c.best_seconds) + "}";
  }
  out += "]}";
  atomic_write_file(status_path(run_dir_), out);
}

namespace {

std::string format_seconds(double s) {
  char buf[64];
  if (!std::isfinite(s)) return "?";
  if (s >= 3600.0)
    std::snprintf(buf, sizeof buf, "%.1fh", s / 3600.0);
  else if (s >= 60.0)
    std::snprintf(buf, sizeof buf, "%.1fm", s / 60.0);
  else
    std::snprintf(buf, sizeof buf, "%.1fs", s);
  return buf;
}

/// Parse a file that a live writer may be atomically replacing. The
/// rename is atomic so a reader always sees a complete document — but a
/// pessimistic retry costs nothing and covers filesystems with weaker
/// rename semantics.
template <typename Fn>
auto with_one_retry(Fn&& fn) {
  try {
    return fn();
  } catch (const Error&) {
    return fn();
  }
}

}  // namespace

RunLiveness render_run_status(std::ostream& os, const std::string& run_dir,
                              double stale_after_seconds) {
  PT_REQUIRE(RunJournal::exists(run_dir),
             "'" + run_dir +
                 "' holds no run journal (journal.csv) — not a run "
                 "directory, or the run never started");
  const RunJournal::Peek peek =
      with_one_retry([&] { return RunJournal::peek(run_dir); });

  std::size_t done = 0, running = 0, pending = 0;
  for (const CellState s : peek.states) {
    switch (s) {
      case CellState::Done: ++done; break;
      case CellState::Running: ++running; break;
      case CellState::Pending: ++pending; break;
    }
  }
  const bool all_done = done == peek.states.size();

  obs::json::Value status;
  bool have_status = false;
  const std::string spath = RunStatusWriter::status_path(run_dir);
  if (file_exists(spath)) {
    try {
      status = with_one_retry(
          [&] { return obs::json::Value::parse(read_file(spath)); });
      have_status = true;
    } catch (const Error&) {
      // A malformed heartbeat is treated as no heartbeat at all.
    }
  }

  const double now = obs::wall_unix_now();
  double heartbeat_age = std::numeric_limits<double>::infinity();
  if (have_status)
    if (const auto* hb = status.find("heartbeat_wall"); hb != nullptr)
      heartbeat_age = now - hb->as_number();

  RunLiveness liveness = RunLiveness::Dead;
  if (all_done)
    liveness = RunLiveness::Complete;
  else if (have_status && heartbeat_age <= stale_after_seconds)
    liveness = RunLiveness::Running;

  os << "run:       " << run_dir << "\n";
  os << "journal:   " << peek.states.size() << " cells — " << done
     << " done, " << running << " running, " << pending << " pending\n";
  if (have_status) {
    os << "heartbeat: " << format_seconds(heartbeat_age) << " ago";
    if (const auto* pid = status.find("pid"); pid != nullptr)
      os << " (pid " << static_cast<std::int64_t>(pid->as_number());
    if (const auto* up = status.find("uptime_seconds"); up != nullptr)
      os << ", uptime " << format_seconds(up->as_number());
    os << ")\n";
    const auto* evals = status.find("evals");
    if (evals != nullptr) {
      const double edone = evals->at("done").as_number();
      const double etotal = evals->at("total").as_number();
      os << "progress:  evals " << static_cast<std::int64_t>(edone) << "/"
         << static_cast<std::int64_t>(etotal);
      if (etotal > 0.0) {
        char pct[16];
        std::snprintf(pct, sizeof pct, " (%.1f%%)",
                      100.0 * edone / etotal);
        os << pct;
      }
      if (const auto* best = status.find("best_seconds");
          best != nullptr && best->is_number())
        os << ", best " << render_double(best->as_number()) << " s";
      if (const auto* rate = status.find("throughput_evals_per_sec");
          rate != nullptr && rate->as_number() > 0.0) {
        os << ", " << render_double(rate->as_number()) << " evals/s";
        if (const auto* eta = status.find("eta_seconds");
            eta != nullptr && eta->is_number() &&
            liveness == RunLiveness::Running)
          os << ", ETA " << format_seconds(eta->as_number());
      }
      os << "\n";
    }
    if (const auto* pool = status.find("pool"); pool != nullptr)
      os << "pool:      " << pool->at("workers_busy").as_number()
         << " workers busy, queue depth "
         << pool->at("queue_depth").as_number() << "\n";
    if (const auto* guard = status.find("guard");
        guard != nullptr && guard->at("trust").as_number() >= 0.0)
      os << "guard:     trust "
         << render_double(guard->at("trust").as_number()) << ", state "
         << guard->at("state").as_number() << "\n";
  } else {
    os << "heartbeat: none found (status.json missing — run predates "
          "telemetry, was started with telemetry off, or died before the "
          "first beat)\n";
  }

  // Per-cell table: journal state is the ground truth; phase / eval
  // detail comes from the heartbeat when its shape matches the journal.
  const auto* detail =
      have_status ? status.find("cells_detail") : nullptr;
  const bool detail_ok = detail != nullptr && detail->is_array() &&
                         detail->as_array().size() == peek.states.size();
  os << "cells:\n";
  for (std::size_t i = 0; i < peek.states.size(); ++i) {
    char idx[16];
    std::snprintf(idx, sizeof idx, "  [%03zu] ", i);
    os << idx;
    char state[16];
    std::snprintf(state, sizeof state, "%-8s", to_string(peek.states[i]));
    os << state << peek.labels[i];
    if (detail_ok) {
      const obs::json::Value& d = detail->as_array()[i];
      if (const auto* phase = d.find("phase");
          phase != nullptr && !phase->as_string().empty() &&
          peek.states[i] != CellState::Done)
        os << "  phase=" << phase->as_string();
      if (const auto* phases = d.find("phases_done"); phases != nullptr)
        os << "  " << static_cast<std::int64_t>(phases->as_number())
           << "/" << kNumExperimentPhases << " phases";
      if (const auto* ev = d.find("evals_done"); ev != nullptr)
        os << "  " << static_cast<std::int64_t>(ev->as_number())
           << " evals";
      if (const auto* best = d.find("best_seconds");
          best != nullptr && best->is_number())
        os << "  best=" << render_double(best->as_number()) << " s";
    }
    os << "\n";
  }

  switch (liveness) {
    case RunLiveness::Complete:
      os << "status:    COMPLETE — all cells done\n";
      break;
    case RunLiveness::Running:
      os << "status:    RUNNING\n";
      break;
    case RunLiveness::Dead:
      if (have_status)
        os << "status:    DEAD — no heartbeat for "
           << format_seconds(heartbeat_age) << " (threshold "
           << format_seconds(stale_after_seconds)
           << ") with unfinished cells\n";
      else
        os << "status:    DEAD — unfinished cells and no heartbeat\n";
      os << "resume:    re-run the same experiment command with "
            "--run-dir '"
         << run_dir << "' --resume\n";
      break;
  }
  return liveness;
}

}  // namespace portatune::tuner
