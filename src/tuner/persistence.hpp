// Search-trace persistence.
//
// T_a — the (configuration, run time) record from a tuning run — is the
// paper's transferable artifact: collected once per machine, reused to
// warm every future search. These helpers serialize a SearchTrace to a
// self-describing CSV (header row carries the parameter names; a leading
// comment row carries algorithm/problem/machine metadata) and load it
// back against a ParamSpace, validating that the space matches.
//
// Format:
//   # portatune-trace v1,<algorithm>,<problem>,<machine>
//   <param0>,<param1>,...,seconds,draw_index
//   32,256,4,...,0.3412,17
//
// Values are written as parameter *values* (like the surrogate features),
// not indices, so traces stay meaningful if a space is re-declared with
// the same values in a different construction order per parameter.
//
// Checkpoints extend the trace format with the sampler and resilience
// state needed to resume an interrupted search exactly (same magic-line
// convention; extra `# key,...` metadata rows; rows carry the original
// elapsed timestamp so the resumed clock is bitwise-identical):
//
//   # portatune-checkpoint v1,<algorithm>,<problem>,<machine>
//   # draws,<stream draws consumed>
//   # clock,<search clock seconds>
//   # stop,<stop reason or empty>
//   # stats,<attempts>,<failures>,<transient>,<deterministic>,<timeouts>,<overhead_seconds>
//   # quarantine,<hex hash>,<hex hash>,...          (row absent when empty)
//   # pending,<hex hash>:<draw>,...                 (row absent when empty;
//                                                    session suggestions not
//                                                    yet reported)
//   <param0>,...,seconds,elapsed,draw_index
//
// Version history (loaders accept every version; writers emit the
// newest):
//   v1  original format above
//   v2  rows gain a trailing wall_unix column
//   v3  a final `# checksum,<16 hex digits>` footer carries the FNV-1a
//       hash of every byte before it, so loaders reject truncated or
//       bit-flipped files with a checksum diagnostic instead of silently
//       resuming from garbage
#pragma once

#include <iosfwd>
#include <string>

#include "tuner/random_search.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

/// Serialize to a stream. Throws on traces whose space is unknown — pass
/// the space the trace was recorded against.
void save_trace_csv(std::ostream& os, const SearchTrace& trace,
                    const ParamSpace& space);

/// Serialize to a file (overwrites). Throws portatune::Error on I/O error.
void save_trace_csv(const std::string& path, const SearchTrace& trace,
                    const ParamSpace& space);

/// Parse a trace written by save_trace_csv. Every row's values must be
/// present in the space's per-parameter value lists (exact match);
/// otherwise throws portatune::Error with the offending row.
SearchTrace load_trace_csv(std::istream& is, const ParamSpace& space);

/// Load from a file. Throws portatune::Error on I/O or format errors.
SearchTrace load_trace_csv(const std::string& path,
                           const ParamSpace& space);

/// Serialize an in-progress search snapshot (trace + sampler position +
/// quarantine) so the search can be resumed exactly.
void save_checkpoint_csv(std::ostream& os, const SearchCheckpoint& snapshot,
                         const ParamSpace& space);

/// Serialize to a file. The file is written to `path + ".tmp"` first and
/// renamed, so a crash mid-write never corrupts the previous checkpoint.
void save_checkpoint_csv(const std::string& path,
                         const SearchCheckpoint& snapshot,
                         const ParamSpace& space);

/// Parse a checkpoint written by save_checkpoint_csv. Validates the space
/// like load_trace_csv. Throws portatune::Error on I/O or format errors.
SearchCheckpoint load_checkpoint_csv(std::istream& is,
                                     const ParamSpace& space);

SearchCheckpoint load_checkpoint_csv(const std::string& path,
                                     const ParamSpace& space);

}  // namespace portatune::tuner
