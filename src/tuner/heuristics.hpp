// Extension search algorithms (paper Sec. II lists them as the standard
// autotuning search family; Sec. VII names testing the transfer approach
// with them as future work — implemented here).
//
// All of them accept an optional *surrogate seeding* model: when a fitted
// source-machine surrogate is supplied, the initial population / starting
// points are drawn as the best predicted configurations from a sampled
// pool instead of uniformly at random. This is the paper's biasing idea
// transplanted into population/local searches.
#pragma once

#include "ml/model.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/resilience.hpp"
#include "tuner/search_options.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

struct GeneticOptions : SearchCommon {
  std::size_t population = 20;
  double crossover_rate = 0.8;
  double mutation_rate = 0.1;   ///< per-gene mutation probability
  std::size_t tournament = 3;
  /// When set, the initial population is the model's best predictions
  /// over a pool of `seed_pool` random configurations.
  const ml::Regressor* surrogate = nullptr;
  std::size_t seed_pool = 2000;
};

/// Steady-state genetic algorithm with tournament selection, uniform
/// crossover and per-gene mutation. Infeasible offspring are discarded.
SearchTrace genetic_search(Evaluator& eval, const GeneticOptions& opt);

struct AnnealingOptions : SearchCommon {
  double initial_temp = 1.0;    ///< relative to the first evaluation
  double cooling = 0.95;        ///< geometric cooling per step
  const ml::Regressor* surrogate = nullptr;
  std::size_t seed_pool = 2000;
};

/// Simulated annealing over the one-step neighborhood of ParamSpace.
SearchTrace annealing_search(Evaluator& eval, const AnnealingOptions& opt);

struct PatternSearchOptions : SearchCommon {
  const ml::Regressor* surrogate = nullptr;
  std::size_t seed_pool = 2000;
};

/// Coordinate pattern search: probe +-1 step along every parameter, move
/// to the best improving neighbor, restart from a fresh random point on
/// local minima until the budget is exhausted.
SearchTrace pattern_search(Evaluator& eval, const PatternSearchOptions& opt);

struct EnsembleOptions : SearchCommon {
  /// AUC-bandit exploration constant (OpenTuner's technique allocator).
  double exploration = 1.4;
  const ml::Regressor* surrogate = nullptr;
};

/// OpenTuner-style multi-technique search: random sampling, mutation
/// hill-climbing, and pattern steps run under a UCB bandit that shifts
/// the evaluation budget toward whichever technique has recently
/// produced improvements.
SearchTrace ensemble_search(Evaluator& eval, const EnsembleOptions& opt);

struct NelderMeadOptions : SearchCommon {
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
  const ml::Regressor* surrogate = nullptr;
  std::size_t seed_pool = 2000;
};

/// Nelder–Mead simplex adapted to the discrete index grid: the simplex
/// lives in continuous index coordinates, every evaluation rounds to the
/// nearest valid configuration. Restarts from a fresh random simplex when
/// it collapses, until the budget is exhausted.
SearchTrace nelder_mead_search(Evaluator& eval,
                               const NelderMeadOptions& opt);

struct OrthogonalSearchOptions : SearchCommon {
  const ml::Regressor* surrogate = nullptr;
  std::size_t seed_pool = 2000;
};

/// Orthogonal (cyclic coordinate) search: sweep each parameter in turn,
/// trying every allowed value with the others held fixed, and commit the
/// best; repeat rounds until the budget is exhausted or a full round
/// yields no improvement (then restart from a random point).
SearchTrace orthogonal_search(Evaluator& eval,
                              const OrthogonalSearchOptions& opt);

}  // namespace portatune::tuner
