// Evaluation backend interface.
//
// An Evaluator is "an application on a machine": it owns the parameter
// space D and maps a configuration to a measured run time, f(x; alpha,
// beta, gamma) in the paper's notation. Search algorithms are written
// against this interface only, so the same search runs unchanged on the
// simulated Table II machines, on the host via the native kernel backend,
// or on the mini-apps.
#pragma once

#include <memory>
#include <string>

#include "tuner/param.hpp"

namespace portatune::tuner {

/// Why an evaluation failed. Drives the retry policy: transient failures
/// (noise, racing processes, flaky I/O) are worth retrying; deterministic
/// failures (infeasible configuration, compile error, segfault on a bad
/// tile/unroll combination) fail every attempt and are quarantined;
/// timeouts (hung kernel) are treated as deterministic by default.
enum class FailureKind {
  None = 0,       ///< the evaluation succeeded
  Transient,      ///< may succeed on retry
  Deterministic,  ///< will fail on every attempt with this configuration
  Timeout,        ///< exceeded the wall-clock deadline
};

const char* to_string(FailureKind kind) noexcept;

/// Outcome of evaluating one configuration.
struct EvalResult {
  double seconds = 0.0;  ///< measured run time (the objective)
  bool ok = true;        ///< false: build/run failure, config is discarded
  std::string error;     ///< diagnostic when !ok
  /// Failure classification (None when ok).
  FailureKind failure_kind = FailureKind::None;
  /// Attempts consumed producing this result (> 1 after retries; 0 when a
  /// quarantined configuration was rejected without touching the backend).
  std::size_t attempts = 1;
  /// Search time spent on this call beyond the reported measurement:
  /// failed attempts, retry backoff, and timed-out watchdog waits.
  double overhead_seconds = 0.0;

  /// A failure an evaluator knows to be permanent for this configuration
  /// (the historical default: infeasible config, build error).
  static EvalResult failure(std::string why,
                            FailureKind kind = FailureKind::Deterministic) {
    EvalResult r;
    r.ok = false;
    r.error = std::move(why);
    r.failure_kind = kind;
    return r;
  }

  static EvalResult transient_failure(std::string why) {
    return failure(std::move(why), FailureKind::Transient);
  }
};

inline const char* to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::None: return "none";
    case FailureKind::Transient: return "transient";
    case FailureKind::Deterministic: return "deterministic";
    case FailureKind::Timeout: return "timeout";
  }
  return "unknown";
}

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// The feasible configuration space D. The paper's transfer assumption
  /// is that D is identical across machines for a given application.
  virtual const ParamSpace& space() const = 0;

  /// Measure one configuration. Implementations must tolerate repeated
  /// calls with the same configuration (and should be deterministic for
  /// reproducibility; the simulated backends are).
  virtual EvalResult evaluate(const ParamConfig& config) = 0;

  virtual std::string problem_name() const = 0;
  virtual std::string machine_name() const = 0;
};

using EvaluatorPtr = std::unique_ptr<Evaluator>;

}  // namespace portatune::tuner
