// Evaluation backend interface.
//
// An Evaluator is "an application on a machine": it owns the parameter
// space D and maps a configuration to a measured run time, f(x; alpha,
// beta, gamma) in the paper's notation. Search algorithms are written
// against this interface only, so the same search runs unchanged on the
// simulated Table II machines, on the host via the native kernel backend,
// or on the mini-apps.
#pragma once

#include <memory>
#include <string>

#include "tuner/param.hpp"

namespace portatune::tuner {

/// Outcome of evaluating one configuration.
struct EvalResult {
  double seconds = 0.0;  ///< measured run time (the objective)
  bool ok = true;        ///< false: build/run failure, config is discarded
  std::string error;     ///< diagnostic when !ok

  static EvalResult failure(std::string why) {
    return {0.0, false, std::move(why)};
  }
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// The feasible configuration space D. The paper's transfer assumption
  /// is that D is identical across machines for a given application.
  virtual const ParamSpace& space() const = 0;

  /// Measure one configuration. Implementations must tolerate repeated
  /// calls with the same configuration (and should be deterministic for
  /// reproducibility; the simulated backends are).
  virtual EvalResult evaluate(const ParamConfig& config) = 0;

  virtual std::string problem_name() const = 0;
  virtual std::string machine_name() const = 0;
};

using EvaluatorPtr = std::unique_ptr<Evaluator>;

}  // namespace portatune::tuner
