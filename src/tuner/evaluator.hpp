// Evaluation backend interface.
//
// An Evaluator is "an application on a machine": it owns the parameter
// space D and maps a configuration to a measured run time, f(x; alpha,
// beta, gamma) in the paper's notation. Search algorithms are written
// against this interface only, so the same search runs unchanged on the
// simulated Table II machines, on the host via the native kernel backend,
// or on the mini-apps.
//
// Evaluation is batch-oriented: searches hand the evaluator a *window* of
// configurations via evaluate_batch() and size those windows by
// capabilities().preferred_batch. The default implementation evaluates the
// batch serially through evaluate(), so every existing backend works
// unmodified; ParallelEvaluator (tuner/parallel.hpp) overrides it to fan a
// batch out over a thread pool when the inner backend is thread-safe.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tuner/param.hpp"

namespace portatune::tuner {

/// Why an evaluation failed. Drives the retry policy: transient failures
/// (noise, racing processes, flaky I/O) are worth retrying; deterministic
/// failures (infeasible configuration, compile error, segfault on a bad
/// tile/unroll combination) fail every attempt and are quarantined;
/// timeouts (hung kernel) are treated as deterministic by default.
enum class FailureKind {
  None = 0,       ///< the evaluation succeeded
  Transient,      ///< may succeed on retry
  Deterministic,  ///< will fail on every attempt with this configuration
  Timeout,        ///< exceeded the wall-clock deadline
};

inline const char* to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::None: return "none";
    case FailureKind::Transient: return "transient";
    case FailureKind::Deterministic: return "deterministic";
    case FailureKind::Timeout: return "timeout";
  }
  return "unknown";
}

/// Outcome of evaluating one configuration. Construct through the
/// factories (success / failure / transient_failure) rather than aggregate
/// initialization so the invariants (ok <-> failure_kind) hold by
/// construction.
struct EvalResult {
  double seconds = 0.0;  ///< measured run time (the objective)
  bool ok = true;        ///< false: build/run failure, config is discarded
  std::string error;     ///< diagnostic when !ok
  /// Failure classification (None when ok).
  FailureKind failure_kind = FailureKind::None;
  /// Attempts consumed producing this result (> 1 after retries; 0 when a
  /// quarantined configuration was rejected without touching the backend).
  std::size_t attempts = 1;
  /// Search time spent on this call beyond the reported measurement:
  /// failed attempts, retry backoff, and timed-out watchdog waits.
  double overhead_seconds = 0.0;

  /// A successful measurement of `seconds`.
  static EvalResult success(double seconds) {
    EvalResult r;
    r.seconds = seconds;
    return r;
  }

  /// A failure an evaluator knows to be permanent for this configuration
  /// (the historical default: infeasible config, build error).
  static EvalResult failure(std::string why,
                            FailureKind kind = FailureKind::Deterministic) {
    EvalResult r;
    r.ok = false;
    r.error = std::move(why);
    r.failure_kind = kind;
    return r;
  }

  static EvalResult transient_failure(std::string why) {
    return failure(std::move(why), FailureKind::Transient);
  }
};

/// What a caller may assume about an evaluator. Decorators forward their
/// inner evaluator's capabilities (adjusted for whatever guarantees the
/// decorator adds or removes).
struct EvalCapabilities {
  /// evaluate() may be called concurrently from multiple threads. Backends
  /// default to false; pure-function backends (the simulated machines)
  /// override this, while the native timing backend stays serial (shared
  /// scratch buffers, and concurrent timing runs would skew each other).
  bool thread_safe = false;
  /// Preferred number of configurations per evaluate_batch() call.
  /// Searches size their draw windows by this; 1 means "serial" and
  /// reproduces the classic one-at-a-time evaluation loop exactly.
  std::size_t preferred_batch = 1;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// The feasible configuration space D. The paper's transfer assumption
  /// is that D is identical across machines for a given application.
  virtual const ParamSpace& space() const = 0;

  /// Measure one configuration. Implementations must tolerate repeated
  /// calls with the same configuration (and should be deterministic for
  /// reproducibility; the simulated backends are).
  virtual EvalResult evaluate(const ParamConfig& config) = 0;

  /// Measure a batch of configurations; result i corresponds to batch[i]
  /// regardless of the order evaluations actually complete in. The default
  /// evaluates serially in batch order, so a batch against a plain backend
  /// is indistinguishable from a loop of evaluate() calls.
  virtual std::vector<EvalResult> evaluate_batch(
      std::span<const ParamConfig> batch) {
    std::vector<EvalResult> out;
    out.reserve(batch.size());
    for (const auto& config : batch) out.push_back(evaluate(config));
    return out;
  }

  /// Concurrency/batching contract of this evaluator. The conservative
  /// default (serial, batch width 1) is correct for every backend.
  virtual EvalCapabilities capabilities() const { return {}; }

  /// Decorators override this to expose the evaluator they wrap; plain
  /// backends return nullptr. Lets callers locate a specific layer
  /// anywhere in a decorator stack (see find_layer below) instead of
  /// assuming the stack's exact shape.
  virtual Evaluator* inner_evaluator() noexcept { return nullptr; }

  virtual std::string problem_name() const = 0;
  virtual std::string machine_name() const = 0;
};

using EvaluatorPtr = std::unique_ptr<Evaluator>;

/// Walk a decorator stack outermost-in and return the first layer of type
/// T, or nullptr when no layer matches. E.g. the checkpoint code uses
/// find_layer<ResilientEvaluator> to snapshot the quarantine no matter how
/// many observers or parallel fan-outs wrap it.
template <typename T>
T* find_layer(Evaluator* eval) noexcept {
  for (Evaluator* e = eval; e != nullptr; e = e->inner_evaluator())
    if (auto* hit = dynamic_cast<T*>(e)) return hit;
  return nullptr;
}

}  // namespace portatune::tuner
