#include "tuner/sampler.hpp"

#include "support/error.hpp"

namespace portatune::tuner {

namespace {
constexpr double kEnumerationLimit = 1 << 16;
}

ConfigStream::ConfigStream(const ParamSpace& space, std::uint64_t seed)
    : space_(&space), rng_(seed), cardinality_(space.cardinality()) {
  PT_REQUIRE(space.num_params() > 0, "empty parameter space");
  if (cardinality_ <= kEnumerationLimit) {
    use_enumeration_ = true;
    // Odometer enumeration of the full product space.
    ParamConfig c(space.num_params(), 0);
    bool done = false;
    while (!done) {
      enumerated_.push_back(c);
      done = true;
      for (std::size_t p = space.num_params(); p-- > 0;) {
        if (static_cast<std::size_t>(++c[p]) <
            space.param(p).values.size()) {
          done = false;
          break;
        }
        c[p] = 0;
      }
    }
    rng_.shuffle(enumerated_);
  }
}

std::optional<ParamConfig> ConfigStream::next() {
  if (use_enumeration_) {
    if (cursor_ >= enumerated_.size()) return std::nullopt;
    ++produced_;
    return enumerated_[cursor_++];
  }
  // Rejection sampling with hash-based dedup. The spaces this path serves
  // have cardinality >> any realistic draw count, so collisions are rare;
  // the retry budget guards against degenerate callers.
  for (int attempt = 0; attempt < 4096; ++attempt) {
    ParamConfig c = space_->random_config(rng_);
    if (seen_.insert(space_->config_hash(c)).second) {
      ++produced_;
      return c;
    }
  }
  return std::nullopt;
}

}  // namespace portatune::tuner
