#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/noise.hpp"
#include "support/error.hpp"

namespace portatune::sim {

namespace {

/// Per-loop register-band extent (1 when the loop has no register band).
std::vector<std::int64_t> reg_band_extents(
    const LoopNest& nest, std::span<const EffectiveLevel> levels) {
  std::vector<std::int64_t> reg(nest.loops.size(), 1);
  for (const auto& lv : levels)
    if (lv.reg_band) reg[lv.loop] = lv.extent;
  return reg;
}

/// Distinct values of `ref` within one register block: the product of the
/// register-band extents of the loops the reference depends on.
double distinct_in_reg_block(const ArrayRef& ref,
                             std::span<const std::int64_t> reg) {
  double d = 1.0;
  for (std::size_t l = 0; l < reg.size(); ++l) {
    if (reg[l] <= 1) continue;
    bool depends = false;
    for (const auto& ix : ref.indices)
      if (ix.depends_on(l)) depends = true;
    if (depends) d *= static_cast<double>(reg[l]);
  }
  return d;
}

/// The innermost loop that remains a real (non-unrolled) loop after the
/// transformation; this is the loop the compiler tries to vectorize.
std::size_t vector_loop(const LoopNest& nest,
                        std::span<const EffectiveLevel> levels) {
  for (std::size_t i = levels.size(); i-- > 0;)
    if (!levels[i].reg_band) return levels[i].loop;
  return nest.loops.size() - 1;
}

enum class VecClass { Contiguous, Strided, None };

/// Classify the nest's vectorizability along `vloop`: contiguous if every
/// reference is unit-stride or invariant in the last dimension w.r.t. the
/// loop and does not index outer dimensions with it; strided otherwise;
/// None when the loop indexes nothing (degenerate).
VecClass classify_vector(const LoopNest& nest, std::size_t vloop) {
  bool touches = false;
  bool contiguous = true;
  for (const auto& s : nest.stmts) {
    for (const auto& r : s.refs) {
      for (std::size_t d = 0; d < r.indices.size(); ++d) {
        const std::int64_t c = r.indices[d].coeff_of(vloop);
        if (c == 0) continue;
        touches = true;
        const bool last = (d + 1 == r.indices.size());
        if (!last || std::abs(c) != 1) contiguous = false;
      }
    }
  }
  if (!touches) return VecClass::None;
  return contiguous ? VecClass::Contiguous : VecClass::Strided;
}

}  // namespace

bool AnalyticalCostModel::is_identity(const NestTransform& t) {
  for (const auto& lt : t.loops)
    if (lt.unroll != 1 || lt.cache_tile > 1 || lt.reg_tile != 1) return false;
  return !t.scalar_replacement;
}

NestTransform AnalyticalCostModel::intel_auto_transform(
    const LoopNest& nest, const MachineDescriptor& m, int threads) {
  NestTransform t = NestTransform::identity(nest.loops.size());
  t.threads = threads;
  t.vector_pragma = true;
  const std::size_t n = nest.loops.size();
  for (std::size_t l = 0; l < n; ++l) {
    if (nest.loops[l].extent >= 256) t.loops[l].cache_tile = 128;
  }
  // Unroll-and-jam the two innermost loops, scaled to the register file.
  const int rt = m.fp_registers >= 32 ? 4 : 2;
  if (n >= 2) t.loops[n - 2].reg_tile = rt;
  if (n >= 1)
    t.loops[n - 1].reg_tile = std::min<std::int64_t>(
        rt, std::max<std::int64_t>(1, nest.loops[n - 1].extent));
  return t;
}

CostBreakdown AnalyticalCostModel::evaluate_raw(
    const LoopNest& nest, const NestTransform& t, const MachineDescriptor& m,
    bool compiler_clean_source) const {
  const auto levels = effective_levels(nest, t);
  const auto reg = reg_band_extents(nest, levels);

  CostBreakdown out;

  // ---- iteration counts -------------------------------------------------
  double occ_total = 1.0;
  for (const auto& l : nest.loops) occ_total *= l.occupancy;
  const double iters_full = nest.iterations(nest.loops.size());
  const double flops = nest.total_flops();

  double reg_block = 1.0;
  for (auto r : reg) reg_block *= static_cast<double>(r);

  // ---- effective threading ----------------------------------------------
  const int threads =
      (nest.outer_parallel && t.threads > 1)
          ? std::min<int>(t.threads, m.cores * m.threads_per_core)
          : 1;
  // SMT threads beyond the physical core count contribute ~25 % each.
  const double phys = std::min<double>(threads, m.cores);
  const double smt = std::max<double>(0.0, threads - phys);
  const double eff_cores = phys + 0.25 * smt;

  // ---- accesses after register reuse --------------------------------------
  double accesses = 0.0;
  double reg_values = 0.0;  // live values in one register block
  for (const auto& s : nest.stmts) {
    const double iters_s = nest.iterations(s.depth);
    double per_block = 0.0;
    for (const auto& r : s.refs) per_block += distinct_in_reg_block(r, reg);
    accesses += iters_s / reg_block * per_block;
    if (s.depth == nest.loops.size()) reg_values += per_block;
  }
  if (t.scalar_replacement) accesses *= 0.85;
  out.accesses = accesses;

  // ---- vectorization ------------------------------------------------------
  const std::size_t vloop = vector_loop(nest, levels);
  const VecClass vc = classify_vector(nest, vloop);
  const bool intel = m.compiler == Compiler::Intel;
  double vec = 1.0;
  if (vc == VecClass::Contiguous) {
    double eff = intel ? 0.9 : 0.8;
    if (t.vector_pragma) eff = std::min(1.0, eff + 0.05);
    vec = 1.0 + (m.vector_doubles - 1) * eff;
  } else if (vc == VecClass::Strided && intel) {
    vec = 1.0 + (m.vector_doubles - 1) * 0.25;  // gather/scatter vectorization
  }
  out.vec_factor = vec;

  // ---- ILP from unrolling (matters on in-order cores) ---------------------
  double inner_unroll = static_cast<double>(t.loops.back().unroll);
  for (auto r : reg) inner_unroll *= static_cast<double>(r);
  const double log_u = std::log2(1.0 + inner_unroll);
  const double ilp = m.out_of_order
                         ? std::min(1.0, 0.95 + 0.0125 * log_u)
                         : std::min(1.0, 0.55 + 0.13 * log_u);
  out.ilp_factor = ilp;

  // ---- register pressure ---------------------------------------------------
  const double vec_regs =
      vc == VecClass::Contiguous && vec > 1.0
          ? std::max(1.0, reg_values / m.vector_doubles)
          : reg_values;
  // In-order cores must keep every unrolled iteration's temporaries live
  // to overlap them; out-of-order cores rename onto the physical file,
  // and icc's modulo scheduler allocates rotating lifetimes that avoid
  // the pressure (GCC of this era did not).
  double unroll_temps = 0.0;
  if (!m.out_of_order && !intel) {
    double u = 1.0;
    for (const auto& lt : t.loops) u *= static_cast<double>(lt.unroll);
    unroll_temps = std::max(0.0, u - 1.0);
  }
  const double regs_needed =
      vec_regs + 4.0 + unroll_temps;  // + address/temp registers
  const double spills = std::max(0.0, regs_needed - m.fp_registers);
  out.spill_regs = spills;

  // ---- compute time ---------------------------------------------------------
  const double flop_cycles = flops / (m.scalar_flops_per_cycle * vec * ilp);
  const double load_ports = std::max(1.0, m.issue_width / 2.0);
  const double vec_loads = vec > 1.0 ? vec : 1.0;
  // Loads flow through dedicated AGU/load ports; on out-of-order cores the
  // pipeline keeps them saturated regardless of source-level unrolling,
  // while in-order cores stall on the same ILP limits as the FP stream.
  const double load_ilp = m.out_of_order ? 1.0 : ilp;
  const double load_cycles = accesses / (load_ports * vec_loads) / load_ilp;
  double compute_cycles = std::max(flop_cycles, load_cycles);

  // I-cache pressure from unrolled body size.
  double unroll_product = 1.0;
  for (std::size_t l = 0; l < t.loops.size(); ++l)
    unroll_product *= static_cast<double>(t.loops[l].unroll) *
                      static_cast<double>(reg[l]);
  double ops_per_iter = 0.0;
  for (const auto& s : nest.stmts)
    if (s.depth == nest.loops.size())
      ops_per_iter += s.flops + static_cast<double>(s.refs.size());
  const double body_bytes = std::max(16.0, ops_per_iter * 7.0) * unroll_product;
  if (body_bytes > static_cast<double>(m.l1i_bytes)) {
    compute_cycles *=
        1.0 + 0.25 * std::log2(body_bytes / static_cast<double>(m.l1i_bytes));
  }

  // ---- cache misses per level (per-reference reuse-scope analysis) -------
  const std::size_t L = m.caches.size();
  out.level_misses.assign(L, 0.0);

  // Prefix executions: product of level extents outside position p.
  std::vector<double> exec_prefix(levels.size() + 1, 1.0);
  for (std::size_t p = 0; p < levels.size(); ++p)
    exec_prefix[p + 1] =
        exec_prefix[p] * static_cast<double>(levels[p].extent);
  // exec_prefix[p] = executions of the scope starting at position p.

  // Scope footprints (levels [p, end)) for every position, per line size;
  // line sizes differ across machines (Power7 uses 128 B), but within one
  // machine all levels share a line size in our descriptors.
  const int line = m.caches.front().line_bytes;
  std::vector<double> scope_bytes(levels.size() + 1, 0.0);
  for (std::size_t p = 0; p <= levels.size(); ++p) {
    const auto spans = loop_spans(nest, levels, p);
    scope_bytes[p] = scope_footprint_bytes(nest, spans, line);
  }

  // Array padding damps power-of-two conflict misses, effectively raising
  // the usable fraction of each cache.
  const double utilization = m.cache_utilization *
                             opt_.capacity_utilization *
                             (t.array_padding ? 1.15 : 1.0);
  for (std::size_t c = 0; c < L; ++c) {
    const auto& spec = m.caches[c];
    double cap = static_cast<double>(spec.size_bytes) * utilization;
    if (spec.shared && threads > 1) cap /= threads;

    double level_misses = 0.0;
    for (const auto& s : nest.stmts) {
      const double stmt_scale =
          nest.iterations(s.depth) / std::max(1.0, iters_full);
      for (const auto& r : s.refs) {
        // Baseline: every access touches a fresh line.
        double best = exec_prefix[levels.size()] *
                      static_cast<double>(1.0);
        double prev_lines = 1.0;
        for (std::size_t p = levels.size(); p-- > 0;) {
          const auto spans = loop_spans(nest, levels, p);
          const double lines =
              ref_footprint_lines(nest, r, spans, spec.line_bytes);
          const double grown =
              prev_lines * static_cast<double>(levels[p].extent);
          const bool has_reuse = lines < grown * 0.999;
          if (has_reuse && scope_bytes[p + 1] > cap) break;
          best = std::min(best, exec_prefix[p] * lines);
          prev_lines = lines;
        }
        level_misses += best * stmt_scale;
      }
    }
    out.level_misses[c] = level_misses * occ_total;
  }
  // Monotonicity: a lower level cannot miss more than the one above it.
  for (std::size_t c = 1; c < L; ++c)
    out.level_misses[c] = std::min(out.level_misses[c],
                                   out.level_misses[c - 1]);

  // Data-TLB: the same per-reference reuse-scope analysis at page
  // granularity, with capacity = TLB reach. Every "new page" event costs a
  // walk.
  double tlb_misses = 0.0;
  {
    const double tlb_cap =
        static_cast<double>(m.tlb_entries) * m.page_bytes;
    std::vector<double> page_scope_bytes(levels.size() + 1, 0.0);
    for (std::size_t p = 0; p <= levels.size(); ++p) {
      const auto spans = loop_spans(nest, levels, p);
      page_scope_bytes[p] =
          scope_footprint_bytes(nest, spans, m.page_bytes);
    }
    for (const auto& s : nest.stmts) {
      const double stmt_scale =
          nest.iterations(s.depth) / std::max(1.0, iters_full);
      for (const auto& r : s.refs) {
        double best = exec_prefix[levels.size()];
        double prev_pages = 1.0;
        for (std::size_t p = levels.size(); p-- > 0;) {
          const auto spans = loop_spans(nest, levels, p);
          const double pages =
              ref_footprint_lines(nest, r, spans, m.page_bytes);
          const double grown =
              prev_pages * static_cast<double>(levels[p].extent);
          const bool has_reuse = pages < grown * 0.999;
          if (has_reuse && page_scope_bytes[p + 1] > tlb_cap) break;
          best = std::min(best, exec_prefix[p] * pages);
          prev_pages = pages;
        }
        tlb_misses += best * stmt_scale;
      }
    }
    tlb_misses *= occ_total;
  }

  out.dram_lines = out.level_misses.empty() ? 0.0 : out.level_misses.back();
  out.dram_bytes = out.dram_lines * m.caches.back().line_bytes;

  // ---- memory time ----------------------------------------------------------
  double lat_cycles = 0.0;
  for (std::size_t c = 0; c + 1 < L; ++c)
    lat_cycles += (out.level_misses[c] - out.level_misses[c + 1]) *
                  m.caches[c + 1].latency_cycles;
  lat_cycles += out.dram_lines * m.dram_latency_cycles;
  // icc inserts software prefetches into loops it can analyze; clean
  // (untransformed or compiler-generated) source gets the full benefit.
  double mlp = std::max(1.0, m.mem_parallelism);
  if (intel && compiler_clean_source) mlp *= m.intel_prefetch_boost;
  const double clock_hz = m.clock_ghz * 1e9;
  // TLB walks overlap with other misses on out-of-order cores.
  lat_cycles += tlb_misses * m.tlb_miss_cycles;
  const double lat_seconds = lat_cycles / clock_hz / mlp / eff_cores;
  // Bandwidth floors: traffic filled out of each level cannot exceed that
  // level's sustainable bandwidth, nor can DRAM traffic exceed DRAM's.
  double bw_seconds = out.dram_bytes / (m.dram_bandwidth_gbs * 1e9);
  for (std::size_t c = 1; c < L; ++c) {
    if (m.caches[c].bandwidth_gbs <= 0.0) continue;
    const double bytes_from_c =
        out.level_misses[c - 1] * m.caches[c - 1].line_bytes;
    double bw = m.caches[c].bandwidth_gbs * 1e9;
    if (!m.caches[c].shared) bw *= eff_cores;  // private: per-core figure
    bw_seconds = std::max(bw_seconds, bytes_from_c / bw);
  }
  const double memory_seconds = std::max(lat_seconds, bw_seconds);

  // ---- overheads -------------------------------------------------------------
  const double inner_total =
      static_cast<double>(t.loops.back().unroll) *
      static_cast<double>(reg[nest.loops.size() - 1]);
  const double branches = iters_full / std::max(1.0, inner_total);
  double overhead_cycles = branches * m.branch_cost_cycles;
  overhead_cycles += spills * 2.0 * (iters_full / reg_block) *
                     m.spill_cost_cycles;
  double overhead_seconds = overhead_cycles / clock_hz / eff_cores;
  if (threads > 1)
    overhead_seconds += 5e-6 + 2e-6 * static_cast<double>(threads);

  const double compute_seconds = compute_cycles / clock_hz / eff_cores;
  out.compute_seconds = compute_seconds;
  out.memory_seconds = memory_seconds;
  out.overhead_seconds = overhead_seconds;

  if (m.out_of_order) {
    out.seconds_clean = std::max(compute_seconds, memory_seconds) +
                        0.3 * std::min(compute_seconds, memory_seconds) +
                        overhead_seconds;
  } else {
    out.seconds_clean = compute_seconds + memory_seconds + overhead_seconds;
  }

  // Hand-transformed source impedes the compiler's own scheduling and
  // alignment analysis relative to clean source it fully understands
  // (icc in particular; dramatic on the in-order Xeon Phi).
  if (!compiler_clean_source && intel)
    out.seconds_clean *= m.hand_transform_penalty;

  out.seconds = out.seconds_clean;
  return out;
}

CostBreakdown AnalyticalCostModel::evaluate(const LoopNest& nest,
                                            const NestTransform& t,
                                            const MachineDescriptor& m,
                                            std::uint64_t config_hash) const {
  const bool identity = is_identity(t);
  CostBreakdown best = evaluate_raw(nest, t, m, identity);

  // icc -O3 applies its own tiling/unroll-and-jam to clean, compiler-
  // tilable nests; the compiled binary realizes whichever is faster.
  if (m.compiler == Compiler::Intel && nest.compiler_tilable && identity) {
    const NestTransform auto_t = intel_auto_transform(nest, m, t.threads);
    CostBreakdown alt = evaluate_raw(nest, auto_t, m, true);
    alt.seconds_clean *= 0.95;  // compiler-internal codegen is tighter
    alt.seconds = alt.seconds_clean;
    if (alt.seconds_clean < best.seconds_clean) {
      alt.compiler_auto_applied = true;
      best = alt;
    }
  }

  const std::uint64_t key =
      noise_key(m.name + "/" + to_string(m.compiler), nest.name, config_hash,
                opt_.noise_salt);
  best.seconds = best.seconds_clean * noise_factor(key, opt_.noise_sigma);
  return best;
}

double AnalyticalCostModel::run_time(std::span<const LoopNest> nests,
                                     std::span<const NestTransform> transforms,
                                     const MachineDescriptor& m,
                                     std::uint64_t config_hash) const {
  PT_REQUIRE(nests.size() == transforms.size(),
             "one transform per nest required");
  double total = 0.0;
  for (std::size_t i = 0; i < nests.size(); ++i)
    total += evaluate(nests[i], transforms[i], m, config_hash).seconds;
  return total;
}

}  // namespace portatune::sim
