#include "sim/trace_sim.hpp"

#include "support/error.hpp"

namespace portatune::sim {

namespace {

class TraceRunner {
 public:
  TraceRunner(const LoopNest& nest, std::vector<EffectiveLevel> levels,
              CacheHierarchy& hierarchy)
      : nest_(nest), levels_(std::move(levels)), hierarchy_(hierarchy) {
    // Array base addresses: page-aligned, laid out back to back.
    std::uint64_t base = 1 << 20;
    for (const auto& a : nest_.arrays) {
      bases_.push_back(base);
      base += static_cast<std::uint64_t>(a.bytes());
      base = (base + 4095) & ~std::uint64_t{4095};
    }
    iters_.assign(nest_.loops.size(), 0);
  }

  TraceStats run() {
    stats_.level_misses.assign(hierarchy_.levels(), 0);
    descend(0);
    for (std::size_t c = 0; c < hierarchy_.levels(); ++c)
      stats_.level_misses[c] = hierarchy_.level(c).misses();
    stats_.memory_accesses = hierarchy_.memory_accesses();
    stats_.accesses = hierarchy_.total_accesses();
    return stats_;
  }

 private:
  void descend(std::size_t pos) {
    if (pos == levels_.size()) {
      emit();
      return;
    }
    const auto& lv = levels_[pos];
    const std::int64_t saved = iters_[lv.loop];
    for (std::int64_t i = 0; i < lv.extent; ++i) {
      iters_[lv.loop] = saved + i * lv.stride;
      // Skip padded iterations introduced by ceil-division strip-mining.
      if (iters_[lv.loop] >= nest_.loops[lv.loop].extent) break;
      descend(pos + 1);
    }
    iters_[lv.loop] = saved;
  }

  void emit() {
    ++stats_.iterations;
    for (const auto& s : nest_.stmts) {
      if (s.depth < nest_.loops.size()) {
        // Shallow statements fire once per enclosing iteration: only when
        // every deeper loop variable sits at its minimum.
        bool at_origin = true;
        for (std::size_t l = s.depth; l < nest_.loops.size(); ++l)
          if (iters_[l] != 0) at_origin = false;
        if (!at_origin) continue;
      }
      for (const auto& r : s.refs) {
        const auto& arr = nest_.arrays[r.array];
        std::uint64_t linear = 0;
        for (std::size_t d = 0; d < r.indices.size(); ++d) {
          std::int64_t v = r.indices[d].eval(iters_);
          if (v < 0) v = 0;
          if (v >= arr.dims[d]) v = arr.dims[d] - 1;
          linear = linear * static_cast<std::uint64_t>(arr.dims[d]) +
                   static_cast<std::uint64_t>(v);
        }
        hierarchy_.access(bases_[r.array] +
                          linear * static_cast<std::uint64_t>(
                                       arr.element_bytes));
      }
    }
  }

  const LoopNest& nest_;
  std::vector<EffectiveLevel> levels_;
  CacheHierarchy& hierarchy_;
  std::vector<std::uint64_t> bases_;
  std::vector<std::int64_t> iters_;
  TraceStats stats_;
};

}  // namespace

TraceStats simulate_nest(const LoopNest& nest, const NestTransform& t,
                         const std::vector<CacheLevelSpec>& hierarchy) {
  for (const auto& l : nest.loops)
    PT_REQUIRE(l.occupancy == 1.0,
               "trace simulation supports rectangular nests only");
  CacheHierarchy caches(hierarchy);
  TraceRunner runner(nest, effective_levels(nest, t), caches);
  TraceStats stats = runner.run();
  // One registry update per simulated nest (never per access): the replay
  // loop stays free of shared-state traffic.
  caches.publish_metrics();
  return stats;
}

}  // namespace portatune::sim
