#include "sim/cache.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace portatune::sim {

namespace {
bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(std::int64_t size_bytes, int line_bytes, int associativity)
    : line_bytes_(line_bytes), associativity_(associativity) {
  PT_REQUIRE(is_pow2(line_bytes), "line size must be a power of two");
  PT_REQUIRE(associativity > 0, "associativity must be positive");
  PT_REQUIRE(size_bytes >= line_bytes * associativity,
             "cache smaller than one set");
  // Set count need not be a power of two (e.g. Power7's 10 MiB L3 or a
  // 20-way 20 MiB Sandybridge L3); indexing is modulo the set count.
  sets_ = static_cast<std::size_t>(size_bytes /
                                   (static_cast<std::int64_t>(line_bytes) *
                                    associativity));
  ways_.assign(sets_ * static_cast<std::size_t>(associativity_), Way{});
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  const std::uint64_t tag = line / sets_;
  Way* base = &ways_[set * static_cast<std::size_t>(associativity_)];
  ++clock_;

  Way* victim = base;
  for (int w = 0; w < associativity_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way as the victim
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  if (victim->valid) ++evictions_;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  const std::uint64_t tag = line / sets_;
  const Way* base = &ways_[set * static_cast<std::size_t>(associativity_)];
  for (int w = 0; w < associativity_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::reset() {
  for (auto& w : ways_) w = Way{};
  clock_ = hits_ = misses_ = evictions_ = 0;
}

CacheHierarchy::CacheHierarchy(const std::vector<CacheLevelSpec>& levels) {
  PT_REQUIRE(!levels.empty(), "hierarchy needs at least one level");
  caches_.reserve(levels.size());
  for (const auto& spec : levels)
    caches_.emplace_back(spec.size_bytes, spec.line_bytes,
                         spec.associativity);
}

std::size_t CacheHierarchy::access(std::uint64_t addr) {
  ++total_accesses_;
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i].access(addr)) return i;
  }
  ++memory_accesses_;
  return caches_.size();
}

void CacheHierarchy::reset() {
  for (auto& c : caches_) c.reset();
  memory_accesses_ = 0;
  total_accesses_ = 0;
}

void CacheHierarchy::publish_metrics(const std::string& prefix) const {
  auto& metrics = obs::MetricsRegistry::current();
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    const Cache& c = caches_[i];
    const std::string level = prefix + ".l" + std::to_string(i);
    metrics.counter(level + ".hits").add(c.hits());
    metrics.counter(level + ".misses").add(c.misses());
    metrics.counter(level + ".evictions").add(c.evictions());
  }
  metrics.counter(prefix + ".accesses").add(total_accesses_);
  metrics.counter(prefix + ".memory_accesses").add(memory_accesses_);
  metrics.gauge(prefix + ".miss_rate").set(memory_miss_rate());
}

}  // namespace portatune::sim
