// Analytical kernel cost model.
//
// Maps (loop nest, transformation, machine) to an estimated run time in
// seconds. The model is mechanistic — every term corresponds to a hardware
// effect — so that *rankings* of configurations shift across machines for
// the same reasons they do on real hardware (cache capacities vs tile
// working sets, vector width vs unrolling, register file vs unroll-and-jam
// footprint, in-order vs out-of-order miss overlap). That is precisely the
// structure the paper's transfer method exploits.
//
// Terms:
//   compute   max(FLOP issue, load issue) with vectorization and (for
//             in-order cores) unrolling-dependent ILP,
//   memory    per-level capacity misses from working-set scope analysis,
//             serviced at level latencies with miss overlap (MLP), bounded
//             below by DRAM bandwidth,
//   overhead  loop-back branches (reduced by unrolling), register spills
//             (unroll-and-jam pressure), I-cache overflow of unrolled
//             bodies, threading fork/join.
//
// The Intel-compiler hyperparameter models icc -O3 auto-optimization: on
// compiler-tilable nests an untransformed source is compiled as if icc had
// applied its own tiling/vectorization recipe (see DESIGN.md, Xeon Phi).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/loopnest.hpp"
#include "sim/machine.hpp"

namespace portatune::sim {

/// Detailed cost decomposition for one nest on one machine.
struct CostBreakdown {
  double seconds = 0.0;            ///< total, noise applied
  double seconds_clean = 0.0;      ///< total before noise
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double overhead_seconds = 0.0;
  std::vector<double> level_misses;  ///< per cache level (lines)
  double dram_lines = 0.0;
  double dram_bytes = 0.0;
  double accesses = 0.0;           ///< L1 references after register reuse
  double vec_factor = 1.0;
  double ilp_factor = 1.0;
  double spill_regs = 0.0;
  bool compiler_auto_applied = false;
};

class AnalyticalCostModel {
 public:
  struct Options {
    /// Log-normal sigma of the per-(machine, configuration) perturbation.
    /// This covers both run-to-run measurement noise and unmodeled
    /// machine idiosyncrasies (alignment, prefetcher quirks); it is what
    /// keeps cross-machine correlations realistically below 1.0.
    double noise_sigma = 0.06;
    std::uint64_t noise_salt = 0;
    /// Global scale on each machine's cache_utilization (1.0 = use the
    /// machine descriptor's value as-is).
    double capacity_utilization = 1.0;
  };

  AnalyticalCostModel() = default;
  explicit AnalyticalCostModel(Options opt) : opt_(opt) {}

  /// Cost of one transformed nest. `config_hash` identifies the *user
  /// configuration* for the noise draw (callers hash their parameter
  /// vector once and reuse it across phases).
  CostBreakdown evaluate(const LoopNest& nest, const NestTransform& t,
                         const MachineDescriptor& m,
                         std::uint64_t config_hash = 0) const;

  /// Total run time of a multi-phase kernel (sum over nests).
  double run_time(std::span<const LoopNest> nests,
                  std::span<const NestTransform> transforms,
                  const MachineDescriptor& m,
                  std::uint64_t config_hash = 0) const;

  double run_time(const LoopNest& nest, const NestTransform& t,
                  const MachineDescriptor& m,
                  std::uint64_t config_hash = 0) const {
    return evaluate(nest, t, m, config_hash).seconds;
  }

  const Options& options() const noexcept { return opt_; }

  /// The transformation icc -O3 is modeled to apply on a compiler-tilable
  /// nest when the source is untransformed (exposed for tests).
  static NestTransform intel_auto_transform(const LoopNest& nest,
                                            const MachineDescriptor& m,
                                            int threads);

  /// True if the transform leaves the source unchanged (modulo threads).
  static bool is_identity(const NestTransform& t);

 private:
  CostBreakdown evaluate_raw(const LoopNest& nest, const NestTransform& t,
                             const MachineDescriptor& m,
                             bool compiler_clean_source) const;

  Options opt_{};
};

}  // namespace portatune::sim
