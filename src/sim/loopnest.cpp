#include "sim/loopnest.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace portatune::sim {

std::int64_t IndexExpr::eval(std::span<const std::int64_t> iters) const {
  std::int64_t v = offset;
  for (const auto& t : terms) v += t.coeff * iters[t.loop];
  return v;
}

std::int64_t IndexExpr::coeff_of(std::size_t loop) const {
  for (const auto& t : terms)
    if (t.loop == loop) return t.coeff;
  return 0;
}

bool IndexExpr::depends_on(std::size_t loop) const {
  return coeff_of(loop) != 0;
}

IndexExpr idx(std::size_t loop) { return IndexExpr{{{loop, 1}}, 0}; }

IndexExpr idx(std::size_t loop, std::int64_t coeff, std::int64_t offset) {
  return IndexExpr{{{loop, coeff}}, offset};
}

std::int64_t ArrayDecl::elements() const {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

std::int64_t ArrayDecl::bytes() const { return elements() * element_bytes; }

NestTransform NestTransform::identity(std::size_t num_loops) {
  NestTransform t;
  t.loops.assign(num_loops, LoopTransform{});
  return t;
}

double LoopNest::iterations(std::size_t depth) const {
  PT_REQUIRE(depth <= loops.size(), "depth exceeds nest depth");
  double n = 1.0;
  for (std::size_t l = 0; l < depth; ++l)
    n *= static_cast<double>(loops[l].extent) * loops[l].occupancy;
  return n;
}

double LoopNest::total_flops() const {
  double f = 0.0;
  for (const auto& s : stmts) f += s.flops * iterations(s.depth);
  return f;
}

std::int64_t LoopNest::data_bytes() const {
  std::int64_t b = 0;
  for (const auto& a : arrays) b += a.bytes();
  return b;
}

void LoopNest::validate(const NestTransform& t) const {
  PT_REQUIRE(t.loops.size() == loops.size(),
             "transform arity does not match nest depth for " + name);
  PT_REQUIRE(t.threads >= 1, "thread count must be positive");
  for (std::size_t l = 0; l < loops.size(); ++l) {
    const auto& lt = t.loops[l];
    PT_REQUIRE(lt.unroll >= 1, "unroll factor must be >= 1");
    PT_REQUIRE(lt.reg_tile >= 1, "register tile must be >= 1");
    PT_REQUIRE(lt.cache_tile >= 0, "cache tile must be >= 0");
    PT_REQUIRE(lt.cache_tile <= loops[l].extent,
               "cache tile exceeds loop extent in " + name);
    PT_REQUIRE(lt.reg_tile <= loops[l].extent,
               "register tile exceeds loop extent in " + name);
    if (lt.cache_tile > 1)
      PT_REQUIRE(lt.reg_tile <= lt.cache_tile,
                 "register tile exceeds cache tile in " + name);
  }
}

std::vector<EffectiveLevel> effective_levels(const LoopNest& nest,
                                             const NestTransform& t) {
  nest.validate(t);
  const std::size_t n = nest.loops.size();

  // Per-loop decomposition extents: tile-band x intra-band x reg-band with
  // product >= original extent (ceil division pads the last tile).
  std::vector<EffectiveLevel> tile_band, intra_band, reg_band;
  for (std::size_t l = 0; l < n; ++l) {
    const std::int64_t extent = nest.loops[l].extent;
    const auto& lt = t.loops[l];
    const std::int64_t tile =
        (lt.cache_tile > 1 && lt.cache_tile < extent) ? lt.cache_tile : 0;
    const std::int64_t rt = std::min<std::int64_t>(
        lt.reg_tile, tile > 0 ? tile : extent);

    const std::int64_t intra_extent = tile > 0 ? tile : extent;
    const std::int64_t reg_extent = rt > 1 ? rt : 1;
    const std::int64_t mid_extent =
        (intra_extent + reg_extent - 1) / reg_extent;

    if (tile > 0)
      tile_band.push_back({l, (extent + tile - 1) / tile, tile, false});
    intra_band.push_back({l, mid_extent, reg_extent, false});
    if (reg_extent > 1) reg_band.push_back({l, reg_extent, 1, true});
  }

  std::vector<EffectiveLevel> out;
  out.reserve(tile_band.size() + intra_band.size() + reg_band.size());
  out.insert(out.end(), tile_band.begin(), tile_band.end());
  out.insert(out.end(), intra_band.begin(), intra_band.end());
  out.insert(out.end(), reg_band.begin(), reg_band.end());
  return out;
}

std::vector<std::int64_t> loop_spans(const LoopNest& nest,
                                     std::span<const EffectiveLevel> levels,
                                     std::size_t from) {
  std::vector<std::int64_t> spans(nest.loops.size(), 1);
  for (std::size_t i = from; i < levels.size(); ++i)
    spans[levels[i].loop] *= levels[i].extent;
  // A loop's covered range can never exceed its original extent (padding
  // from ceil-division would otherwise inflate it).
  for (std::size_t l = 0; l < spans.size(); ++l)
    spans[l] = std::min(spans[l], nest.loops[l].extent);
  return spans;
}

double ref_footprint_lines(const LoopNest& nest, const ArrayRef& ref,
                           std::span<const std::int64_t> spans,
                           int line_bytes) {
  const ArrayDecl& arr = nest.arrays[ref.array];
  PT_ASSERT(ref.indices.size() == arr.dims.size());

  double lines = 1.0;
  for (std::size_t d = 0; d < ref.indices.size(); ++d) {
    // Range of the affine expression as loop variables sweep their spans.
    std::int64_t range = 1;
    std::int64_t min_stride = 0;
    for (const auto& term : ref.indices[d].terms) {
      const std::int64_t mag = std::abs(term.coeff);
      if (mag == 0) continue;
      range += mag * (spans[term.loop] - 1);
      if (min_stride == 0 || mag < min_stride) min_stride = mag;
    }
    range = std::min(range, arr.dims[d]);
    if (d + 1 == ref.indices.size()) {
      // Contiguous dimension: distinct lines over the byte span. A stride
      // larger than a line means every access is its own line.
      const double bytes =
          static_cast<double>(range) * arr.element_bytes;
      if (min_stride * arr.element_bytes >= line_bytes && min_stride > 1) {
        lines *= static_cast<double>(range) /
                 std::max<std::int64_t>(1, min_stride);
      } else {
        lines *= std::max(1.0, bytes / line_bytes);
      }
    } else {
      // Every distinct value of an outer dimension is a separate row.
      lines *= static_cast<double>(range);
    }
  }
  return lines;
}

double scope_footprint_bytes(const LoopNest& nest,
                             std::span<const std::int64_t> spans,
                             int line_bytes) {
  double total = 0.0;
  for (std::size_t a = 0; a < nest.arrays.size(); ++a) {
    double lines = 0.0;
    for (const auto& s : nest.stmts)
      for (const auto& r : s.refs)
        if (r.array == a) lines += ref_footprint_lines(nest, r, spans,
                                                       line_bytes);
    const double cap = static_cast<double>(nest.arrays[a].bytes()) /
                       line_bytes;
    total += std::min(lines, std::max(1.0, cap));
  }
  return total * line_bytes;
}

}  // namespace portatune::sim
