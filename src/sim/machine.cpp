#include "sim/machine.hpp"

#include <algorithm>
#include <cctype>

#include "support/error.hpp"

namespace portatune::sim {

std::string to_string(Compiler c) {
  return c == Compiler::Gnu ? "gnu" : "intel";
}

namespace {
constexpr std::int64_t KiB = 1024;
constexpr std::int64_t MiB = 1024 * 1024;
}  // namespace

MachineDescriptor make_westmere(Compiler c) {
  MachineDescriptor m;
  m.name = "Westmere";
  m.vendor = "Intel";
  m.processor = "E5645";
  m.cores = 6;
  m.threads_per_core = 2;
  m.clock_ghz = 2.4;
  m.vector_doubles = 2;  // SSE4.2
  m.scalar_flops_per_cycle = 2.0;  // mul + add ports, no FMA
  m.issue_width = 4.0;
  m.fp_registers = 16;
  m.out_of_order = true;
  m.mem_parallelism = 5.0;
  m.caches = {
      {"L1", 32 * KiB, 64, 8, 4, false, 0.0},
      {"L2", 256 * KiB, 64, 8, 10, false, 35.0},
      {"L3", 12 * MiB, 64, 16, 42, true, 60.0},
  };
  m.tlb_entries = 512;
  m.tlb_miss_cycles = 8.0;
  m.dram_latency_cycles = 200;
  m.dram_bandwidth_gbs = 25.0;  // 3-channel DDR3-1333
  m.branch_cost_cycles = 0.5;
  m.spill_cost_cycles = 3.0;
  m.compiler = c;
  return m;
}

MachineDescriptor make_sandybridge(Compiler c) {
  MachineDescriptor m;
  m.name = "Sandybridge";
  m.vendor = "Intel";
  m.processor = "E5-2687W";
  m.cores = 8;
  m.threads_per_core = 2;
  m.clock_ghz = 3.4;
  m.vector_doubles = 4;  // AVX
  m.scalar_flops_per_cycle = 2.0;
  m.issue_width = 5.0;
  m.fp_registers = 16;
  m.out_of_order = true;
  m.mem_parallelism = 6.0;
  m.caches = {
      {"L1", 32 * KiB, 64, 8, 4, false, 0.0},
      {"L2", 256 * KiB, 64, 8, 11, false, 40.0},
      {"L3", 20 * MiB, 64, 20, 40, true, 80.0},
  };
  m.tlb_entries = 512;
  m.tlb_miss_cycles = 8.0;
  m.dram_latency_cycles = 190;
  m.dram_bandwidth_gbs = 40.0;  // 4-channel DDR3-1600
  m.branch_cost_cycles = 0.5;
  m.spill_cost_cycles = 3.0;
  m.compiler = c;
  return m;
}

MachineDescriptor make_xeon_phi(Compiler c) {
  MachineDescriptor m;
  m.name = "XeonPhi";
  m.vendor = "Intel";
  m.processor = "Xeon Phi 7120a";
  m.cores = 61;
  m.threads_per_core = 4;
  m.clock_ghz = 1.24;
  m.vector_doubles = 8;  // 512-bit IMCI
  m.scalar_flops_per_cycle = 2.0;  // FMA
  m.issue_width = 2.0;  // in-order, dual-issue
  m.fp_registers = 32;
  m.out_of_order = false;
  m.mem_parallelism = 2.0;  // in-order core; prefetch provides some overlap
  m.caches = {
      {"L1", 32 * KiB, 64, 8, 3, false, 0.0},
      {"L2", 512 * KiB, 64, 8, 24, false, 20.0},
      // No L3 (Table II lists '-').
  };
  m.tlb_entries = 64;
  m.tlb_miss_cycles = 25.0;
  m.dram_latency_cycles = 300;
  m.dram_bandwidth_gbs = 170.0;  // GDDR5
  m.branch_cost_cycles = 2.0;
  m.spill_cost_cycles = 4.0;
  // icc's software prefetching is the make-or-break optimization on KNC's
  // in-order cores, and it only fires on loops the compiler can analyze.
  m.intel_prefetch_boost = 3.0;
  m.hand_transform_penalty = 1.25;
  m.compiler = c;
  return m;
}

MachineDescriptor make_power7(Compiler c) {
  MachineDescriptor m;
  m.name = "Power7";
  m.vendor = "IBM";
  m.processor = "Power7+";
  m.cores = 6;
  m.threads_per_core = 4;
  m.clock_ghz = 4.2;
  m.vector_doubles = 2;  // VSX
  m.scalar_flops_per_cycle = 4.0;  // two FMA pipes
  m.issue_width = 6.0;
  m.fp_registers = 64;  // VSX register file
  m.out_of_order = true;
  m.mem_parallelism = 5.0;
  m.caches = {
      {"L1", 32 * KiB, 128, 8, 3, false, 0.0},
      {"L2", 256 * KiB, 128, 8, 8, false, 50.0},
      {"L3", 10 * MiB, 128, 8, 26, false, 70.0},  // per-core eDRAM L3
  };
  m.tlb_entries = 512;
  m.tlb_miss_cycles = 6.0;
  m.dram_latency_cycles = 180;
  m.dram_bandwidth_gbs = 60.0;
  m.branch_cost_cycles = 0.5;
  m.spill_cost_cycles = 2.0;
  m.compiler = c;
  return m;
}

MachineDescriptor make_xgene(Compiler c) {
  MachineDescriptor m;
  m.name = "X-Gene";
  m.vendor = "AppliedMicro";
  m.processor = "APM883208-X1";
  m.cores = 8;
  m.threads_per_core = 1;
  m.clock_ghz = 2.4;
  // The GCC of the study's era did not auto-vectorize double precision on
  // this core; all DP math runs scalar.
  m.vector_doubles = 1;
  m.scalar_flops_per_cycle = 1.0;
  m.issue_width = 2.0;  // modestly out-of-order, narrow issue
  // AArch64 exposes 32 FP registers, but the first-generation X-Gene
  // backend of GCC 4.4-era toolchains kept far fewer live across an
  // unrolled body before spilling.
  m.fp_registers = 12;
  m.out_of_order = false;  // effectively: little miss overlap observed
  m.mem_parallelism = 1.5;
  m.caches = {
      {"L1", 32 * KiB, 64, 8, 5, false, 0.0},
      {"L2", 256 * KiB, 64, 8, 15, false, 14.0},
      {"L3", 8 * MiB, 64, 16, 90, true, 6.0},
  };
  // First-generation ARM server silicon: a small, flat DTLB with a slow
  // software-assisted walker. This is the dominant X-Gene idiosyncrasy:
  // it punishes working sets that are wide in the row dimension, which
  // inverts the tile-shape preferences that Intel/POWER machines share.
  m.tlb_entries = 32;
  m.tlb_miss_cycles = 140.0;
  m.dram_latency_cycles = 280;
  m.dram_bandwidth_gbs = 12.0;
  m.branch_cost_cycles = 3.0;
  m.spill_cost_cycles = 6.0;
  m.cache_utilization = 0.55;  // weak hashing in the shared L3
  m.compiler = c;
  return m;
}

std::vector<MachineDescriptor> table2_machines() {
  return {make_sandybridge(), make_westmere(), make_xeon_phi(Compiler::Gnu),
          make_power7(), make_xgene()};
}

MachineDescriptor machine_by_name(const std::string& name, Compiler c) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (key == "westmere") return make_westmere(c);
  if (key == "sandybridge") return make_sandybridge(c);
  if (key == "xeonphi" || key == "xeon phi" || key == "phi")
    return make_xeon_phi(c);
  if (key == "power7" || key == "power 7") return make_power7(c);
  if (key == "x-gene" || key == "xgene") return make_xgene(c);
  throw Error("unknown machine name: " + name);
}

}  // namespace portatune::sim
