// Deterministic measurement-noise model.
//
// Real autotuning measurements are noisy; the paper controls for this with
// the method of common random numbers (single run, shared evaluation
// order). We emulate a fixed machine state by drawing a log-normal
// perturbation that is a pure hash of (machine, kernel, configuration):
// re-evaluating the same configuration on the same machine always returns
// the same time, and experiments are reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

#include "support/hash.hpp"

namespace portatune::sim {

/// Multiplicative log-normal noise factor exp(sigma * z), z ~ N(0,1),
/// derived deterministically from the key.
inline double noise_factor(std::uint64_t key, double sigma) {
  if (sigma <= 0.0) return 1.0;
  // Box–Muller on two hash-derived uniforms.
  const double u1 = hash_to_unit(mix64(key ^ 0x9d2c5680ULL));
  const double u2 = hash_to_unit(mix64(key ^ 0x5f356495ULL));
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
  return std::exp(sigma * z);
}

/// Build a noise key from machine / kernel / configuration identity.
inline std::uint64_t noise_key(std::string_view machine,
                               std::string_view kernel,
                               std::uint64_t config_hash,
                               std::uint64_t salt = 0) {
  std::uint64_t h = hash_bytes(machine);
  h = hash_combine(h, hash_bytes(kernel));
  h = hash_combine(h, config_hash);
  h = hash_combine(h, salt);
  return h;
}

}  // namespace portatune::sim
