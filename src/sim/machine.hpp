// Parametric machine descriptors.
//
// These stand in for the five physical machines of the paper's Table II.
// Every number that the analytical cost model consumes is an explicit field
// here, so "a machine" is pure data and new architectures can be described
// without touching the model. The cache geometry columns are taken directly
// from Table II; microarchitectural fields (vector width, issue behaviour,
// memory-level parallelism, penalties) are standard public values for the
// respective parts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace portatune::sim {

/// One level of the data-cache hierarchy.
struct CacheLevelSpec {
  std::string name;          ///< "L1", "L2", "L3"
  std::int64_t size_bytes = 0;
  int line_bytes = 64;
  int associativity = 8;
  double latency_cycles = 4;  ///< load-to-use latency on a hit at this level
  bool shared = false;        ///< shared among all cores (affects threading)
  /// Sustainable fill bandwidth out of this level (GB/s; per core for
  /// private levels, aggregate for shared ones). 0 = unconstrained.
  double bandwidth_gbs = 0.0;
};

/// Compiler hyperparameter (part of beta in the paper's formulation; kept
/// constant between source and target machine in every experiment).
enum class Compiler { Gnu, Intel };

std::string to_string(Compiler c);

/// Full description of a (simulated) machine.
struct MachineDescriptor {
  std::string name;
  std::string vendor;
  std::string processor;

  int cores = 1;
  int threads_per_core = 1;
  double clock_ghz = 1.0;

  /// Double-precision lanes of the widest vector unit (SSE=2, AVX=4,
  /// AVX-512/IMCI=8, VSX=2, NEON=2).
  int vector_doubles = 2;
  /// Scalar double-precision FLOPs per cycle per core (counting FMA).
  double scalar_flops_per_cycle = 2.0;
  /// Superscalar issue width (bounds the ILP benefit of unrolling).
  double issue_width = 4.0;
  /// Architectural FP/vector registers visible to the register allocator.
  int fp_registers = 16;

  /// True for aggressive out-of-order cores (Westmere/Sandybridge/Power7):
  /// they extract ILP without source-level unrolling and overlap misses.
  bool out_of_order = true;
  /// Memory-level parallelism: number of outstanding misses effectively
  /// overlapped. In-order cores sit near 1–2.
  double mem_parallelism = 8.0;

  std::vector<CacheLevelSpec> caches;  ///< ordered L1 -> last level
  double dram_latency_cycles = 200;
  double dram_bandwidth_gbs = 20.0;    ///< aggregate sustainable bandwidth

  /// Data-TLB geometry. Working sets spanning more pages than the TLB
  /// covers pay tlb_miss_cycles per new page touched. Server-class Intel
  /// and POWER parts of the era had large second-level TLBs; the
  /// first-generation ARM server parts did not.
  int tlb_entries = 512;
  int page_bytes = 4096;
  double tlb_miss_cycles = 8.0;

  std::int64_t l1i_bytes = 32 * 1024;  ///< instruction cache (unroll bloat)
  /// Effective cycles per loop-back branch. Well-predicted loop branches
  /// are nearly free on aggressive out-of-order cores; in-order cores pay.
  double branch_cost_cycles = 0.5;
  double spill_cost_cycles = 3.0;      ///< per spilled register access

  /// Fraction of nominal cache capacity usable before conflict misses set
  /// in (lower on machines with poorly balanced indexing).
  double cache_utilization = 0.8;
  /// Multiplier on memory-level parallelism when the Intel compiler sees
  /// clean (untransformed) source and can insert software prefetches.
  /// Dramatic on the in-order Xeon Phi, mild on out-of-order cores.
  double intel_prefetch_boost = 1.2;
  /// Slowdown of hand-transformed source relative to what the compiler
  /// does with code it fully understands (scheduling/alignment loss).
  double hand_transform_penalty = 1.03;

  Compiler compiler = Compiler::Gnu;

  /// Peak DP GFLOP/s across all cores (vector + FMA).
  double peak_gflops() const {
    return cores * clock_ghz * scalar_flops_per_cycle * vector_doubles;
  }
  /// Capacity of the last-level cache in bytes (0 if only L1/L2 exist).
  std::int64_t llc_bytes() const {
    return caches.empty() ? 0 : caches.back().size_bytes;
  }
};

/// Table II machines. Each factory takes the compiler hyperparameter so the
/// same architecture can be paired with GNU (default, Sec. V first part) or
/// Intel (Xeon Phi experiments, Sec. V second part).
MachineDescriptor make_westmere(Compiler c = Compiler::Gnu);
MachineDescriptor make_sandybridge(Compiler c = Compiler::Gnu);
MachineDescriptor make_xeon_phi(Compiler c = Compiler::Intel);
MachineDescriptor make_power7(Compiler c = Compiler::Gnu);
MachineDescriptor make_xgene(Compiler c = Compiler::Gnu);

/// All five Table II machines with the GNU compiler.
std::vector<MachineDescriptor> table2_machines();

/// Look up a machine by (case-insensitive) name; throws on unknown names.
MachineDescriptor machine_by_name(const std::string& name,
                                  Compiler c = Compiler::Gnu);

}  // namespace portatune::sim
