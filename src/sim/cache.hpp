// Set-associative cache and multi-level hierarchy simulation.
//
// This is the high-fidelity backend: a trace of byte addresses is pushed
// through an LRU set-associative hierarchy and per-level hit/miss counters
// come out. The analytical cost model's miss estimates are validated
// against this simulator in tests/sim/test_cost_vs_trace.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace portatune::sim {

/// One set-associative LRU cache level.
class Cache {
 public:
  Cache(std::int64_t size_bytes, int line_bytes, int associativity);

  /// Access the line containing `addr`; returns true on hit. On miss the
  /// line is installed (allocate-on-miss, LRU victim).
  bool access(std::uint64_t addr);

  /// True if the line containing `addr` is resident (no state change).
  bool contains(std::uint64_t addr) const;

  void reset();

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  /// Misses that displaced a valid resident line (capacity/conflict
  /// pressure; cold misses filling invalid ways are not evictions).
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  double miss_ratio() const noexcept {
    return accesses() ? static_cast<double>(misses_) / accesses() : 0.0;
  }

  int line_bytes() const noexcept { return line_bytes_; }
  std::size_t num_sets() const noexcept { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  int line_bytes_;
  int associativity_;
  std::size_t sets_;
  std::vector<Way> ways_;  // sets_ x associativity_, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// An inclusive multi-level hierarchy built from a machine descriptor.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const std::vector<CacheLevelSpec>& levels);

  /// Access an address; returns the level index that hit (0 = L1), or
  /// levels() if the access went to memory.
  std::size_t access(std::uint64_t addr);

  std::size_t levels() const noexcept { return caches_.size(); }
  const Cache& level(std::size_t i) const { return caches_.at(i); }

  /// Misses that reached memory (i.e., missed in every level).
  std::uint64_t memory_accesses() const noexcept { return memory_accesses_; }
  std::uint64_t total_accesses() const noexcept { return total_accesses_; }

  void reset();

  /// Overall miss rate: the fraction of accesses that reached memory.
  double memory_miss_rate() const noexcept {
    return total_accesses_ ? static_cast<double>(memory_accesses_) /
                                 static_cast<double>(total_accesses_)
                           : 0.0;
  }

  /// Accumulate this hierarchy's counters into a metrics registry under
  /// `prefix` ("cache" -> cache.l0.hits, cache.l0.misses,
  /// cache.l0.evictions, ..., cache.memory_accesses, cache.miss_rate).
  /// Explicit, not per-access: the simulator's access path stays free of
  /// global-state traffic; callers publish once per simulated kernel.
  void publish_metrics(const std::string& prefix = "cache") const;

 private:
  std::vector<Cache> caches_;
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace portatune::sim
