// Loop-nest intermediate representation.
//
// Kernels are described as (possibly triangular) rectangular loop nests
// whose statements reference arrays through affine index expressions. The
// same IR feeds three consumers:
//   * the analytical cost model (working-set / reuse analysis),
//   * the trace generator for the exact cache simulator,
//   * the mini-Orio code generator (emits transformed C source).
//
// Transformations mirror Orio's Table I recipes: per-loop unrolling,
// cache tiling, and register tiling (unroll-and-jam).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace portatune::sim {

/// Affine index expression: offset + sum(coeff_i * loopvar_i).
struct IndexExpr {
  struct Term {
    std::size_t loop;  ///< index into LoopNest::loops
    std::int64_t coeff;
  };
  std::vector<Term> terms;
  std::int64_t offset = 0;

  std::int64_t eval(std::span<const std::int64_t> iters) const;
  std::int64_t coeff_of(std::size_t loop) const;
  bool depends_on(std::size_t loop) const;
};

/// Convenience factory: the expression `1 * loopvar`.
IndexExpr idx(std::size_t loop);
/// The expression `coeff * loopvar + offset`.
IndexExpr idx(std::size_t loop, std::int64_t coeff, std::int64_t offset = 0);

/// A declared array (row-major).
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> dims;
  int element_bytes = 8;

  std::int64_t elements() const;
  std::int64_t bytes() const;
};

/// One array reference inside a statement.
struct ArrayRef {
  std::size_t array = 0;           ///< index into LoopNest::arrays
  std::vector<IndexExpr> indices;  ///< one per array dimension
  bool is_write = false;
};

/// A statement executing at a given loop depth: it sits inside
/// loops[0..depth) and runs once per iteration of that sub-nest.
struct Statement {
  std::size_t depth = 0;
  double flops = 0.0;
  std::vector<ArrayRef> refs;
  /// Optional C source template using the loop variable names verbatim
  /// (e.g. "C[i][j] = C[i][j] + A[i][k] * B[k][j];"); consumed by the
  /// mini-Orio code generator.
  std::string text;
};

/// One loop of the nest (outermost first).
struct Loop {
  std::string name;
  std::int64_t extent = 1;
  /// Average executed fraction of the extent, to model triangular bounds
  /// (e.g. LU's inner loops run ~half their nominal range on average).
  double occupancy = 1.0;
};

/// Per-loop transformation parameters (Orio Table I).
struct LoopTransform {
  int unroll = 1;            ///< plain unrolling of this loop's body
  std::int64_t cache_tile = 0;  ///< strip-mine + interchange; 0/1 = untiled
  int reg_tile = 1;          ///< unroll-and-jam block size
};

/// Transformation of the whole nest.
struct NestTransform {
  std::vector<LoopTransform> loops;  ///< parallel to LoopNest::loops
  int threads = 1;                   ///< OpenMP threads on the outer loop
  bool scalar_replacement = false;   ///< promote invariant refs to scalars
  bool vector_pragma = false;        ///< force ivdep/simd on the inner loop
  bool array_padding = false;        ///< pad leading dims (fewer conflicts)

  static NestTransform identity(std::size_t num_loops);
};

/// The loop nest itself.
struct LoopNest {
  std::string name;
  std::vector<Loop> loops;
  std::vector<ArrayDecl> arrays;
  std::vector<Statement> stmts;
  /// True when the nest is a perfect rectangular nest an optimizing
  /// compiler can legally tile/vectorize by itself (consumed by the
  /// Intel-compiler auto-optimization model).
  bool compiler_tilable = false;
  /// True when the outermost loop carries no dependence (OpenMP-able).
  bool outer_parallel = false;

  /// Iterations of the sub-nest loops[0..depth), occupancy included.
  double iterations(std::size_t depth) const;
  /// Total floating-point operations of the nest.
  double total_flops() const;
  /// Total bytes across all declared arrays.
  std::int64_t data_bytes() const;

  /// Throws portatune::Error if the transform is malformed (wrong arity,
  /// non-positive factors, tile larger than extent, reg tile > tile, ...).
  void validate(const NestTransform& t) const;
};

/// One level of the *effective* (post-transformation) loop structure:
/// tiling and register tiling strip-mine original loops into bands.
struct EffectiveLevel {
  std::size_t loop = 0;        ///< original loop index
  std::int64_t extent = 1;     ///< trip count of this band level
  std::int64_t stride = 1;     ///< contribution of one step to the original
                               ///  loop variable
  bool reg_band = false;       ///< innermost fully-unrolled register band
};

/// Expand a transform into the effective outer-to-inner level sequence:
/// [cache-tile loops][intra-tile loops][register bands]. The product of a
/// loop's band extents equals its original extent (padded up when factors
/// do not divide evenly).
std::vector<EffectiveLevel> effective_levels(const LoopNest& nest,
                                             const NestTransform& t);

/// Span (range of the loop variable) covered by each original loop inside
/// the scope formed by levels [from, end) of the effective sequence.
std::vector<std::int64_t> loop_spans(const LoopNest& nest,
                                     std::span<const EffectiveLevel> levels,
                                     std::size_t from);

/// Distinct cache lines the reference touches while loop variables range
/// over `spans` (other loops fixed); row-major layout, given line size.
double ref_footprint_lines(const LoopNest& nest, const ArrayRef& ref,
                           std::span<const std::int64_t> spans,
                           int line_bytes);

/// Total footprint in bytes of all statement references within the scope
/// (per-array sum over refs, capped at the array's own size).
double scope_footprint_bytes(const LoopNest& nest,
                             std::span<const std::int64_t> spans,
                             int line_bytes);

}  // namespace portatune::sim
