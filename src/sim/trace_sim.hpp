// Trace-driven execution of a transformed loop nest through the exact
// set-associative cache hierarchy.
//
// This is the high-fidelity (and much slower) counterpart of the
// analytical cost model: the transformed iteration order is enumerated
// exactly — tile bands, intra-tile bands, register bands, including the
// ragged padding when factors do not divide extents — and every array
// reference is replayed through CacheHierarchy. Used to validate the
// analytic miss estimates and available as an optional evaluation backend
// for small problem instances.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cache.hpp"
#include "sim/loopnest.hpp"

namespace portatune::sim {

struct TraceStats {
  std::uint64_t accesses = 0;
  std::vector<std::uint64_t> level_misses;  ///< lines missed per level
  std::uint64_t memory_accesses = 0;        ///< missed all levels
  std::uint64_t iterations = 0;

  double miss_ratio(std::size_t level) const {
    return accesses ? static_cast<double>(level_misses.at(level)) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

/// Replay the transformed nest. Statements at depth d are emitted once per
/// iteration of their enclosing sub-nest (when all deeper loop variables
/// are at their first value). Throws if the nest uses triangular
/// occupancy (the trace enumerates rectangular spaces only).
TraceStats simulate_nest(const LoopNest& nest, const NestTransform& t,
                         const std::vector<CacheLevelSpec>& hierarchy);

}  // namespace portatune::sim
