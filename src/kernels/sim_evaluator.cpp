#include "kernels/sim_evaluator.hpp"

#include "support/error.hpp"

namespace portatune::kernels {

SimulatedKernelEvaluator::SimulatedKernelEvaluator(
    SpaptProblemPtr problem, sim::MachineDescriptor machine, int threads,
    sim::AnalyticalCostModel model)
    : problem_(std::move(problem)),
      machine_(std::move(machine)),
      threads_(threads),
      model_(model) {
  PT_REQUIRE(problem_ != nullptr, "null problem");
  PT_REQUIRE(threads_ >= 1, "thread count must be positive");
}

tuner::EvalResult SimulatedKernelEvaluator::evaluate(
    const tuner::ParamConfig& config) {
  std::vector<sim::NestTransform> transforms;
  try {
    transforms = problem_->transforms(config, threads_);
  } catch (const Error& e) {
    return tuner::EvalResult::failure(e.what());
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = problem_->space().config_hash(config);
  double total = 0.0;
  for (std::size_t p = 0; p < transforms.size(); ++p)
    total += model_
                 .evaluate(problem_->phases()[p].nest, transforms[p],
                           machine_, h)
                 .seconds;
  return tuner::EvalResult::success(total);
}

std::vector<sim::CostBreakdown> SimulatedKernelEvaluator::breakdown(
    const tuner::ParamConfig& config) const {
  const auto transforms = problem_->transforms(config, threads_);
  const std::uint64_t h = problem_->space().config_hash(config);
  std::vector<sim::CostBreakdown> out;
  out.reserve(transforms.size());
  for (std::size_t p = 0; p < transforms.size(); ++p)
    out.push_back(model_.evaluate(problem_->phases()[p].nest, transforms[p],
                                  machine_, h));
  return out;
}

}  // namespace portatune::kernels
