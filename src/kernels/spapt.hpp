// SPAPT search problems (Balaprakash, Wild & Norris 2012), Table III.
//
// Each problem bundles: the kernel as one or more loop-nest phases, the
// tunable parameter space (per-loop unrolling / cache tiling / register
// tiling following Orio's Table I ranges, plus kernel-specific flags), and
// the mapping from a configuration vector to per-phase transformations.
//
// Configurations can be *infeasible* (e.g. a register tile larger than the
// enclosing cache tile): exactly as in real Orio runs, those variants fail
// to build and the evaluator reports a failed measurement rather than a
// run time. Feasibility is machine-independent, which preserves the
// common-random-numbers protocol across machines.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/loopnest.hpp"
#include "tuner/param.hpp"

namespace portatune::kernels {

/// Binds one loop of a phase to parameters in the problem space
/// (-1 = the knob is fixed at its neutral value for this loop).
struct LoopBinding {
  int unroll_param = -1;
  int tile_param = -1;
  int regtile_param = -1;
};

struct PhaseSpec {
  sim::LoopNest nest;
  std::vector<LoopBinding> bindings;  ///< parallel to nest.loops
};

class SpaptProblem {
 public:
  SpaptProblem(std::string name, tuner::ParamSpace space,
               std::vector<PhaseSpec> phases, int scr_param = -1,
               int vec_param = -1, int pad_param = -1);

  const std::string& name() const noexcept { return name_; }
  const tuner::ParamSpace& space() const noexcept { return space_; }
  const std::vector<PhaseSpec>& phases() const noexcept { return phases_; }

  /// Per-phase transforms for a configuration. Throws portatune::Error for
  /// infeasible configurations (the "variant failed to build" case).
  std::vector<sim::NestTransform> transforms(const tuner::ParamConfig& c,
                                             int threads) const;

  /// True when the configuration maps to buildable transforms.
  bool feasible(const tuner::ParamConfig& c) const;

  /// Total floating-point work of the kernel (all phases).
  double total_flops() const;

 private:
  std::string name_;
  tuner::ParamSpace space_;
  std::vector<PhaseSpec> phases_;
  int scr_param_, vec_param_, pad_param_;
};

using SpaptProblemPtr = std::shared_ptr<const SpaptProblem>;

/// Matrix multiply C = A*B, 2000x2000, 12 parameters. Compute bound.
SpaptProblemPtr make_mm(std::int64_t n = 2000);
/// ATAX y = A^T (A x), N = 10000, 13 parameters. Memory-bandwidth bound.
SpaptProblemPtr make_atax(std::int64_t n = 10000);
/// Correlation matrix of a 2000x2000 data set, 12 parameters. Memory bound.
SpaptProblemPtr make_cor(std::int64_t n = 2000);
/// In-place LU decomposition, 2000x2000, 9 parameters. Memory bound.
SpaptProblemPtr make_lu(std::int64_t n = 2000);

/// All four Table III problems at their paper input sizes.
std::vector<SpaptProblemPtr> table3_problems();

/// -------- extended SPAPT problems (beyond the paper's four) ----------

/// BiCG sub-kernel: q = A p and s = A^T r (two matvec phases), 13 params.
SpaptProblemPtr make_bicg(std::int64_t n = 10000);
/// GESUMMV: y = alpha A x + beta B x (single fused phase), 8 parameters.
SpaptProblemPtr make_gesummv(std::int64_t n = 8000);
/// GEMVER: rank-2 update B = A + u1 v1^T + u2 v2^T, then x = beta B^T y,
/// then w = alpha B x (three phases), 15 parameters.
SpaptProblemPtr make_gemver(std::int64_t n = 8000);
/// Jacobi 2-D: 5-point stencil sweeps with a sequential time loop
/// (exercises offset index expressions), 8 parameters.
SpaptProblemPtr make_jacobi2d(std::int64_t n = 4000, std::int64_t steps = 50);

/// The extended problem set (the four extras above).
std::vector<SpaptProblemPtr> extended_problems();

/// Look up a problem by name ("MM", "ATAX", "COR", "LU", "BICG",
/// "GESUMMV", "GEMVER", "JACOBI2D"); optionally at a reduced input size
/// (0 = default size).
SpaptProblemPtr spapt_by_name(const std::string& name, std::int64_t n = 0);

}  // namespace portatune::kernels
