#include "kernels/native.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace portatune::kernels {

namespace {
inline std::int64_t clamp_tile(std::int64_t t, std::int64_t n) {
  return (t <= 1 || t >= n) ? n : t;
}
}  // namespace

void native_mm(const double* a, const double* b, double* c, std::int64_t n,
               std::int64_t ti, std::int64_t tj, std::int64_t tk) {
  ti = clamp_tile(ti, n);
  tj = clamp_tile(tj, n);
  tk = clamp_tile(tk, n);
  for (std::int64_t i0 = 0; i0 < n; i0 += ti)
    for (std::int64_t k0 = 0; k0 < n; k0 += tk)
      for (std::int64_t j0 = 0; j0 < n; j0 += tj) {
        const std::int64_t i1 = std::min(n, i0 + ti);
        const std::int64_t k1 = std::min(n, k0 + tk);
        const std::int64_t j1 = std::min(n, j0 + tj);
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t k = k0; k < k1; ++k) {
            const double aik = a[i * n + k];
            const double* brow = &b[k * n];
            double* crow = &c[i * n];
            for (std::int64_t j = j0; j < j1; ++j)
              crow[j] += aik * brow[j];
          }
      }
}

void native_atax(const double* a, const double* x, double* y, double* tmp,
                 std::int64_t n, std::int64_t ti, std::int64_t tj) {
  ti = clamp_tile(ti, n);
  tj = clamp_tile(tj, n);
  std::fill(tmp, tmp + n, 0.0);
  std::fill(y, y + n, 0.0);
  for (std::int64_t i0 = 0; i0 < n; i0 += ti) {
    const std::int64_t i1 = std::min(n, i0 + ti);
    for (std::int64_t j0 = 0; j0 < n; j0 += tj) {
      const std::int64_t j1 = std::min(n, j0 + tj);
      for (std::int64_t i = i0; i < i1; ++i) {
        double acc = 0.0;
        const double* arow = &a[i * n];
        for (std::int64_t j = j0; j < j1; ++j) acc += arow[j] * x[j];
        tmp[i] += acc;
      }
    }
  }
  for (std::int64_t i0 = 0; i0 < n; i0 += ti) {
    const std::int64_t i1 = std::min(n, i0 + ti);
    for (std::int64_t j0 = 0; j0 < n; j0 += tj) {
      const std::int64_t j1 = std::min(n, j0 + tj);
      for (std::int64_t i = i0; i < i1; ++i) {
        const double t = tmp[i];
        const double* arow = &a[i * n];
        for (std::int64_t j = j0; j < j1; ++j) y[j] += arow[j] * t;
      }
    }
  }
}

void native_cor(const double* data, double* symmat, std::int64_t n,
                std::int64_t tj, std::int64_t tk) {
  tj = clamp_tile(tj, n);
  tk = clamp_tile(tk, n);
  std::fill(symmat, symmat + n * n, 0.0);
  for (std::int64_t j0 = 0; j0 < n; j0 += tj)
    for (std::int64_t k0 = 0; k0 < n; k0 += tk) {
      const std::int64_t j1 = std::min(n, j0 + tj);
      const std::int64_t k1 = std::min(n, k0 + tk);
      for (std::int64_t i = 0; i < n; ++i) {
        const double* row = &data[i * n];
        for (std::int64_t j = j0; j < j1; ++j) {
          const double dj = row[j];
          const std::int64_t lo = std::max(j, k0);
          for (std::int64_t k = lo; k < k1; ++k)
            symmat[j * n + k] += dj * row[k];
        }
      }
    }
}

void native_lu(double* a, std::int64_t n, std::int64_t ti, std::int64_t tj) {
  ti = clamp_tile(ti, n);
  tj = clamp_tile(tj, n);
  for (std::int64_t k = 0; k < n; ++k) {
    const double pivot = a[k * n + k];
    PT_REQUIRE(pivot != 0.0, "zero pivot in native_lu");
    for (std::int64_t i = k + 1; i < n; ++i) a[i * n + k] /= pivot;
    for (std::int64_t i0 = k + 1; i0 < n; i0 += ti) {
      const std::int64_t i1 = std::min(n, i0 + ti);
      for (std::int64_t j0 = k + 1; j0 < n; j0 += tj) {
        const std::int64_t j1 = std::min(n, j0 + tj);
        for (std::int64_t i = i0; i < i1; ++i) {
          const double lik = a[i * n + k];
          const double* urow = &a[k * n];
          double* arow = &a[i * n];
          for (std::int64_t j = j0; j < j1; ++j) arow[j] -= lik * urow[j];
        }
      }
    }
  }
}

void reference_mm(const double* a, const double* b, double* c,
                  std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] += acc;
    }
}

void reference_atax(const double* a, const double* x, double* y,
                    std::int64_t n) {
  std::vector<double> tmp(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) tmp[i] += a[i * n + j] * x[j];
  std::fill(y, y + n, 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) y[j] += a[i * n + j] * tmp[i];
}

NativeKernelEvaluator::NativeKernelEvaluator(SpaptProblemPtr problem,
                                             int reps)
    : problem_(std::move(problem)), reps_(reps) {
  PT_REQUIRE(problem_ != nullptr, "null problem");
  PT_REQUIRE(reps_ >= 1, "need at least one repetition");
  n_ = problem_->phases().front().nest.loops.front().extent;
  PT_REQUIRE(n_ <= 1024,
             "native evaluation wants a reduced input size (n <= 1024); "
             "create the problem with spapt_by_name(name, n)");
  const auto nn = static_cast<std::size_t>(n_ * n_);
  Rng rng(42);
  a_.resize(nn);
  for (auto& v : a_) v = rng.uniform(-1.0, 1.0);
  b_.resize(nn);
  for (auto& v : b_) v = rng.uniform(-1.0, 1.0);
  c_.resize(nn, 0.0);
  x_.resize(static_cast<std::size_t>(n_));
  for (auto& v : x_) v = rng.uniform(-1.0, 1.0);
  y_.resize(static_cast<std::size_t>(n_), 0.0);
  tmp_.resize(static_cast<std::size_t>(n_), 0.0);
}

tuner::EvalResult NativeKernelEvaluator::evaluate(
    const tuner::ParamConfig& config) {
  if (!problem_->feasible(config))
    return tuner::EvalResult::failure("infeasible configuration");
  const auto& space = problem_->space();
  const auto tile = [&](const char* name) -> std::int64_t {
    for (std::size_t p = 0; p < space.num_params(); ++p)
      if (space.param(p).name == name)
        return static_cast<std::int64_t>(space.value(config, p));
    return n_;
  };

  const std::string& kname = problem_->name();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps_; ++rep) {
    WallTimer timer;
    if (kname == "MM") {
      std::fill(c_.begin(), c_.end(), 0.0);
      native_mm(a_.data(), b_.data(), c_.data(), n_, tile("T_I"),
                tile("T_J"), tile("T_K"));
    } else if (kname == "ATAX") {
      native_atax(a_.data(), x_.data(), y_.data(), tmp_.data(), n_,
                  tile("T_1I"), tile("T_1J"));
    } else if (kname == "COR") {
      native_cor(a_.data(), c_.data(), n_, tile("T_J1"), tile("T_J2"));
    } else if (kname == "LU") {
      // Re-seed and diagonally dominate so every rep factors the same
      // matrix without pivoting.
      c_ = a_;
      for (std::int64_t i = 0; i < n_; ++i)
        c_[static_cast<std::size_t>(i * n_ + i)] += static_cast<double>(n_);
      native_lu(c_.data(), n_, tile("T_I"), tile("T_J"));
    } else {
      return tuner::EvalResult::failure("native backend: unknown kernel " +
                                        kname);
    }
    best = std::min(best, timer.seconds());
  }
  return {best, true, {}};
}

}  // namespace portatune::kernels
