// Evaluator backend that "runs" a SPAPT problem on a simulated machine
// through the analytical cost model. This is the stand-in for
// Orio-generates-code + compile + execute on the paper's physical
// machines; the search algorithms cannot tell the difference.
#pragma once

#include "kernels/spapt.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::kernels {

class SimulatedKernelEvaluator final : public tuner::Evaluator {
 public:
  SimulatedKernelEvaluator(SpaptProblemPtr problem,
                           sim::MachineDescriptor machine, int threads = 1,
                           sim::AnalyticalCostModel model = {});

  const tuner::ParamSpace& space() const override {
    return problem_->space();
  }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  std::string problem_name() const override { return problem_->name(); }
  std::string machine_name() const override { return machine_.name; }

  const sim::MachineDescriptor& machine() const noexcept { return machine_; }
  std::size_t evaluations() const noexcept { return evaluations_; }

  /// Full cost breakdowns per phase for one configuration (diagnostics).
  std::vector<sim::CostBreakdown> breakdown(
      const tuner::ParamConfig& config) const;

 private:
  SpaptProblemPtr problem_;
  sim::MachineDescriptor machine_;
  int threads_;
  sim::AnalyticalCostModel model_;
  std::size_t evaluations_ = 0;
};

}  // namespace portatune::kernels
