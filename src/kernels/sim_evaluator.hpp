// Evaluator backend that "runs" a SPAPT problem on a simulated machine
// through the analytical cost model. This is the stand-in for
// Orio-generates-code + compile + execute on the paper's physical
// machines; the search algorithms cannot tell the difference.
#pragma once

#include <atomic>

#include "kernels/spapt.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::kernels {

class SimulatedKernelEvaluator final : public tuner::Evaluator {
 public:
  SimulatedKernelEvaluator(SpaptProblemPtr problem,
                           sim::MachineDescriptor machine, int threads = 1,
                           sim::AnalyticalCostModel model = {});

  /// Movable despite the atomic counter (benchmarks keep these in
  /// vectors). Moving while another thread evaluates is not supported.
  SimulatedKernelEvaluator(SimulatedKernelEvaluator&& other) noexcept
      : problem_(std::move(other.problem_)),
        machine_(std::move(other.machine_)),
        threads_(other.threads_),
        model_(other.model_),
        evaluations_(other.evaluations_.load(std::memory_order_relaxed)) {}

  const tuner::ParamSpace& space() const override {
    return problem_->space();
  }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  /// Thread-safe: the cost model is a pure function of (nest, transform,
  /// machine, config hash) — noise included — and the evaluation counter
  /// is atomic, so concurrent evaluations return bit-identical results.
  tuner::EvalCapabilities capabilities() const override {
    return {.thread_safe = true, .preferred_batch = 1};
  }
  std::string problem_name() const override { return problem_->name(); }
  std::string machine_name() const override { return machine_.name; }

  const sim::MachineDescriptor& machine() const noexcept { return machine_; }
  std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// Full cost breakdowns per phase for one configuration (diagnostics).
  std::vector<sim::CostBreakdown> breakdown(
      const tuner::ParamConfig& config) const;

 private:
  SpaptProblemPtr problem_;
  sim::MachineDescriptor machine_;
  int threads_;
  sim::AnalyticalCostModel model_;
  std::atomic<std::size_t> evaluations_{0};
};

}  // namespace portatune::kernels
