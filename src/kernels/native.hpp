// Native (in-process) SPAPT kernel implementations with run-time cache
// tiling, plus an Evaluator that times them on the host machine.
//
// This is the fast native path: tile parameters take effect directly via
// run-time blocking; unroll / register-tile parameters require code
// generation and are exercised through orio::CompiledOrioEvaluator
// instead (one compiler invocation per variant, exactly like Orio).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/spapt.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::kernels {

/// C += A * B (n x n, row-major), blocked by (ti, tj, tk).
void native_mm(const double* a, const double* b, double* c, std::int64_t n,
               std::int64_t ti, std::int64_t tj, std::int64_t tk);

/// y = A^T (A x); tmp is scratch of size n. Blocked by (ti, tj).
void native_atax(const double* a, const double* x, double* y, double* tmp,
                 std::int64_t n, std::int64_t ti, std::int64_t tj);

/// Correlation matrix of standardized data (n x n): symmat = data^T data
/// over the upper triangle. Blocked by (tj, tk).
void native_cor(const double* data, double* symmat, std::int64_t n,
                std::int64_t tj, std::int64_t tk);

/// In-place LU without pivoting (diagonally dominant input expected).
/// Blocked by (ti, tj) on the trailing update.
void native_lu(double* a, std::int64_t n, std::int64_t ti, std::int64_t tj);

/// Reference (untiled) implementations for correctness checks.
void reference_mm(const double* a, const double* b, double* c,
                  std::int64_t n);
void reference_atax(const double* a, const double* x, double* y,
                    std::int64_t n);

/// Times the four SPAPT kernels on the host. The problem must be created
/// at a reduced input size (e.g. spapt_by_name("MM", 256)): paper-size
/// inputs are deliberately rejected to keep evaluations interactive.
class NativeKernelEvaluator final : public tuner::Evaluator {
 public:
  NativeKernelEvaluator(SpaptProblemPtr problem, int reps = 3);

  const tuner::ParamSpace& space() const override {
    return problem_->space();
  }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  /// NOT thread-safe: evaluations share the scratch buffers below, and
  /// concurrent timing runs on one host would skew each other's
  /// measurements anyway. Deliberately reports the serial default.
  tuner::EvalCapabilities capabilities() const override { return {}; }
  std::string problem_name() const override { return problem_->name(); }
  std::string machine_name() const override { return "host"; }

 private:
  SpaptProblemPtr problem_;
  std::int64_t n_;
  int reps_;
  std::vector<double> a_, b_, c_, x_, y_, tmp_;
};

}  // namespace portatune::kernels
