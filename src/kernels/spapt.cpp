#include "kernels/spapt.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace portatune::kernels {

using sim::ArrayDecl;
using sim::ArrayRef;
using sim::IndexExpr;
using sim::Loop;
using sim::LoopNest;
using sim::NestTransform;
using sim::Statement;
using sim::idx;
using tuner::ParamConfig;
using tuner::ParamSpace;
using tuner::flag_values;
using tuner::pow2_values;
using tuner::range_values;

SpaptProblem::SpaptProblem(std::string name, ParamSpace space,
                           std::vector<PhaseSpec> phases, int scr_param,
                           int vec_param, int pad_param)
    : name_(std::move(name)),
      space_(std::move(space)),
      phases_(std::move(phases)),
      scr_param_(scr_param),
      vec_param_(vec_param),
      pad_param_(pad_param) {
  for (const auto& p : phases_)
    PT_REQUIRE(p.bindings.size() == p.nest.loops.size(),
               "binding arity mismatch in " + name_);
}

std::vector<NestTransform> SpaptProblem::transforms(const ParamConfig& c,
                                                    int threads) const {
  space_.validate(c);
  const auto pick = [&](int param) -> std::int64_t {
    return static_cast<std::int64_t>(
        space_.param(static_cast<std::size_t>(param))
            .values[static_cast<std::size_t>(c[static_cast<std::size_t>(
                param)])]);
  };

  std::vector<NestTransform> out;
  out.reserve(phases_.size());
  for (const auto& phase : phases_) {
    NestTransform t = NestTransform::identity(phase.nest.loops.size());
    t.threads = threads;
    if (scr_param_ >= 0) t.scalar_replacement = pick(scr_param_) != 0;
    if (vec_param_ >= 0) t.vector_pragma = pick(vec_param_) != 0;
    if (pad_param_ >= 0) t.array_padding = pick(pad_param_) != 0;

    for (std::size_t l = 0; l < phase.bindings.size(); ++l) {
      const auto& b = phase.bindings[l];
      auto& lt = t.loops[l];
      const std::int64_t extent = phase.nest.loops[l].extent;
      if (b.unroll_param >= 0)
        lt.unroll = static_cast<int>(
            std::min<std::int64_t>(pick(b.unroll_param), extent));
      if (b.tile_param >= 0) {
        std::int64_t tile = pick(b.tile_param);
        // A tile covering the whole loop is no tiling at all.
        if (tile >= extent || tile <= 1) tile = 0;
        lt.cache_tile = tile;
      }
      if (b.regtile_param >= 0) {
        const std::int64_t rt =
            std::min<std::int64_t>(pick(b.regtile_param), extent);
        // Infeasible variant: unroll-and-jam block wider than the cache
        // tile cannot be generated (Orio rejects it).
        PT_REQUIRE(lt.cache_tile == 0 || rt <= lt.cache_tile,
                   name_ + ": register tile exceeds cache tile");
        lt.reg_tile = static_cast<int>(rt);
      }
    }
    phase.nest.validate(t);
    out.push_back(std::move(t));
  }
  return out;
}

bool SpaptProblem::feasible(const ParamConfig& c) const {
  try {
    (void)transforms(c, 1);
    return true;
  } catch (const Error&) {
    return false;
  }
}

double SpaptProblem::total_flops() const {
  double f = 0.0;
  for (const auto& p : phases_) f += p.nest.total_flops();
  return f;
}

namespace {

/// Adds the (U, T, RT) triple for one loop; returns the binding.
LoopBinding add_loop_params(ParamSpace& space, const std::string& loop) {
  LoopBinding b;
  b.unroll_param = static_cast<int>(space.add("U_" + loop,
                                              range_values(1, 32)));
  b.tile_param = static_cast<int>(space.add("T_" + loop,
                                            pow2_values(0, 11)));
  b.regtile_param = static_cast<int>(space.add("RT_" + loop,
                                               pow2_values(0, 5)));
  return b;
}

}  // namespace

SpaptProblemPtr make_mm(std::int64_t n) {
  // for i, j, k: C[i][j] += A[i][k] * B[k][j]
  LoopNest nest;
  nest.name = "MM";
  nest.loops = {{"i", n, 1.0}, {"j", n, 1.0}, {"k", n, 1.0}};
  nest.arrays = {{"C", {n, n}, 8}, {"A", {n, n}, 8}, {"B", {n, n}, 8}};
  Statement s;
  s.depth = 3;
  s.flops = 2.0;
  s.refs = {
      {0, {idx(0), idx(1)}, false},  // C[i][j] read
      {0, {idx(0), idx(1)}, true},   // C[i][j] write
      {1, {idx(0), idx(2)}, false},  // A[i][k]
      {2, {idx(2), idx(1)}, false},  // B[k][j]
  };
  nest.stmts = {s};
  nest.compiler_tilable = true;
  nest.outer_parallel = true;

  ParamSpace space;
  PhaseSpec phase;
  phase.nest = std::move(nest);
  phase.bindings = {add_loop_params(space, "I"), add_loop_params(space, "J"),
                    add_loop_params(space, "K")};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  const int vec = static_cast<int>(space.add("VEC", flag_values()));
  const int pad = static_cast<int>(space.add("PAD", flag_values()));
  return std::make_shared<SpaptProblem>(
      "MM", std::move(space), std::vector<PhaseSpec>{std::move(phase)}, scr,
      vec, pad);
}

SpaptProblemPtr make_atax(std::int64_t n) {
  // Phase 1: tmp[i] = sum_j A[i][j] * x[j]
  LoopNest p1;
  p1.name = "ATAX.Ax";
  p1.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p1.arrays = {{"A", {n, n}, 8}, {"x", {n}, 8}, {"tmp", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 2.0;
    s.refs = {
        {0, {idx(0), idx(1)}, false},  // A[i][j]
        {1, {idx(1)}, false},          // x[j]
        {2, {idx(0)}, true},           // tmp[i] (accumulator)
    };
    p1.stmts = {s};
  }
  p1.compiler_tilable = true;
  p1.outer_parallel = true;

  // Phase 2: y[j] += A[i][j] * tmp[i]
  LoopNest p2;
  p2.name = "ATAX.ATy";
  p2.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p2.arrays = {{"A", {n, n}, 8}, {"tmp", {n}, 8}, {"y", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 2.0;
    s.refs = {
        {0, {idx(0), idx(1)}, false},  // A[i][j]
        {1, {idx(0)}, false},          // tmp[i]
        {2, {idx(1)}, false},          // y[j] read
        {2, {idx(1)}, true},           // y[j] write
    };
    p2.stmts = {s};
  }
  p2.compiler_tilable = true;
  p2.outer_parallel = false;  // j-reduction across i carries a dependence

  ParamSpace space;
  PhaseSpec ph1, ph2;
  ph1.nest = std::move(p1);
  ph1.bindings = {add_loop_params(space, "1I"), add_loop_params(space, "1J")};
  ph2.nest = std::move(p2);
  ph2.bindings = {add_loop_params(space, "2I"), add_loop_params(space, "2J")};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  return std::make_shared<SpaptProblem>(
      "ATAX", std::move(space),
      std::vector<PhaseSpec>{std::move(ph1), std::move(ph2)}, scr, -1, -1);
}

SpaptProblemPtr make_cor(std::int64_t n) {
  // Phase 1: column standardization, data[i][j] = (data[i][j]-mean)/std.
  LoopNest p1;
  p1.name = "COR.norm";
  p1.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p1.arrays = {{"data", {n, n}, 8}, {"mean", {n}, 8}, {"stddev", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 3.0;
    s.refs = {
        {0, {idx(0), idx(1)}, false},
        {0, {idx(0), idx(1)}, true},
        {1, {idx(1)}, false},
        {2, {idx(1)}, false},
    };
    p1.stmts = {s};
  }
  p1.compiler_tilable = true;
  p1.outer_parallel = true;

  // Phase 2: symmat[j1][j2] = sum_i data[i][j1]*data[i][j2], j2 >= j1.
  LoopNest p2;
  p2.name = "COR.sym";
  p2.loops = {{"j1", n, 1.0}, {"j2", n, 0.5}, {"i", n, 1.0}};
  p2.arrays = {{"symmat", {n, n}, 8}, {"data", {n, n}, 8}};
  {
    Statement s;
    s.depth = 3;
    s.flops = 2.0;
    s.refs = {
        {0, {idx(0), idx(1)}, false},  // symmat[j1][j2] read
        {0, {idx(0), idx(1)}, true},   // symmat[j1][j2] write
        {1, {idx(2), idx(0)}, false},  // data[i][j1]
        {1, {idx(2), idx(1)}, false},  // data[i][j2]
    };
    p2.stmts = {s};
  }
  p2.compiler_tilable = false;  // triangular bounds defeat auto-tiling
  p2.outer_parallel = true;

  ParamSpace space;
  PhaseSpec ph2;
  ph2.nest = std::move(p2);
  ph2.bindings = {add_loop_params(space, "J1"), add_loop_params(space, "J2"),
                  add_loop_params(space, "I")};
  PhaseSpec ph1;
  ph1.nest = std::move(p1);
  LoopBinding norm_i;
  norm_i.unroll_param =
      static_cast<int>(space.add("U_N", range_values(1, 32)));
  ph1.bindings = {norm_i, LoopBinding{}};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  const int vec = static_cast<int>(space.add("VEC", flag_values()));
  // Phase order: normalization runs first.
  return std::make_shared<SpaptProblem>(
      "COR", std::move(space),
      std::vector<PhaseSpec>{std::move(ph1), std::move(ph2)}, scr, vec, -1);
}

SpaptProblemPtr make_lu(std::int64_t n) {
  // for k: for i>k: A[i][k] /= A[k][k]
  //        for i>k, j>k: A[i][j] -= A[i][k] * A[k][j]
  LoopNest nest;
  nest.name = "LU";
  nest.loops = {{"k", n, 1.0}, {"i", n, 0.5}, {"j", n, 0.5}};
  nest.arrays = {{"A", {n, n}, 8}};
  Statement div;
  div.depth = 2;
  div.flops = 1.0;
  div.refs = {
      {0, {idx(1), idx(0)}, false},  // A[i][k] read
      {0, {idx(1), idx(0)}, true},   // A[i][k] write
      {0, {idx(0), idx(0)}, false},  // A[k][k]
  };
  Statement upd;
  upd.depth = 3;
  upd.flops = 2.0;
  upd.refs = {
      {0, {idx(1), idx(2)}, false},  // A[i][j] read
      {0, {idx(1), idx(2)}, true},   // A[i][j] write
      {0, {idx(1), idx(0)}, false},  // A[i][k]
      {0, {idx(0), idx(2)}, false},  // A[k][j]
  };
  nest.stmts = {div, upd};
  nest.compiler_tilable = false;  // triangular, loop-carried on k
  nest.outer_parallel = false;    // k is inherently sequential
  ParamSpace space;
  PhaseSpec phase;
  phase.nest = std::move(nest);
  phase.bindings = {add_loop_params(space, "K"), add_loop_params(space, "I"),
                    add_loop_params(space, "J")};
  return std::make_shared<SpaptProblem>(
      "LU", std::move(space), std::vector<PhaseSpec>{std::move(phase)}, -1,
      -1, -1);
}

std::vector<SpaptProblemPtr> table3_problems() {
  return {make_mm(), make_atax(), make_cor(), make_lu()};
}

SpaptProblemPtr make_bicg(std::int64_t n) {
  // Phase 1: q[i] = sum_j A[i][j] * p[j]
  LoopNest p1;
  p1.name = "BICG.q";
  p1.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p1.arrays = {{"A", {n, n}, 8}, {"p", {n}, 8}, {"q", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 2.0;
    s.text = "q[i] = q[i] + A[i][j] * p[j];";
    s.refs = {{0, {idx(0), idx(1)}, false},
              {1, {idx(1)}, false},
              {2, {idx(0)}, true}};
    p1.stmts = {s};
  }
  p1.compiler_tilable = true;
  p1.outer_parallel = true;

  // Phase 2: s[j] += A[i][j] * r[i] (the transposed product).
  LoopNest p2;
  p2.name = "BICG.s";
  p2.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p2.arrays = {{"A", {n, n}, 8}, {"r", {n}, 8}, {"s", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 2.0;
    s.text = "s[j] = s[j] + A[i][j] * r[i];";
    s.refs = {{0, {idx(0), idx(1)}, false},
              {1, {idx(0)}, false},
              {2, {idx(1)}, false},
              {2, {idx(1)}, true}};
    p2.stmts = {s};
  }
  p2.compiler_tilable = true;
  p2.outer_parallel = false;  // reduction across i

  ParamSpace space;
  PhaseSpec ph1, ph2;
  ph1.nest = std::move(p1);
  ph1.bindings = {add_loop_params(space, "1I"), add_loop_params(space, "1J")};
  ph2.nest = std::move(p2);
  ph2.bindings = {add_loop_params(space, "2I"), add_loop_params(space, "2J")};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  return std::make_shared<SpaptProblem>(
      "BICG", std::move(space),
      std::vector<PhaseSpec>{std::move(ph1), std::move(ph2)}, scr, -1, -1);
}

SpaptProblemPtr make_gesummv(std::int64_t n) {
  // y[i] = alpha * sum_j A[i][j] x[j] + beta * sum_j B[i][j] x[j],
  // fused into one two-matrix sweep.
  LoopNest nest;
  nest.name = "GESUMMV";
  nest.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  nest.arrays = {{"A", {n, n}, 8},
                 {"B", {n, n}, 8},
                 {"x", {n}, 8},
                 {"y", {n}, 8}};
  Statement s;
  s.depth = 2;
  s.flops = 4.0;
  s.text = "y[i] = y[i] + A[i][j] * x[j] + B[i][j] * x[j];";
  s.refs = {{0, {idx(0), idx(1)}, false},
            {1, {idx(0), idx(1)}, false},
            {2, {idx(1)}, false},
            {3, {idx(0)}, true}};
  nest.stmts = {s};
  nest.compiler_tilable = true;
  nest.outer_parallel = true;

  ParamSpace space;
  PhaseSpec phase;
  phase.nest = std::move(nest);
  phase.bindings = {add_loop_params(space, "I"), add_loop_params(space, "J")};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  const int vec = static_cast<int>(space.add("VEC", flag_values()));
  return std::make_shared<SpaptProblem>(
      "GESUMMV", std::move(space),
      std::vector<PhaseSpec>{std::move(phase)}, scr, vec, -1);
}

SpaptProblemPtr make_gemver(std::int64_t n) {
  // Phase 1: B = A + u1 v1^T + u2 v2^T (rank-2 update).
  LoopNest p1;
  p1.name = "GEMVER.rank2";
  p1.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p1.arrays = {{"B", {n, n}, 8}, {"A", {n, n}, 8}, {"u1", {n}, 8},
               {"v1", {n}, 8},  {"u2", {n}, 8},   {"v2", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 4.0;
    s.text = "B[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];";
    s.refs = {{0, {idx(0), idx(1)}, true},  {1, {idx(0), idx(1)}, false},
              {2, {idx(0)}, false},         {3, {idx(1)}, false},
              {4, {idx(0)}, false},         {5, {idx(1)}, false}};
    p1.stmts = {s};
  }
  p1.compiler_tilable = true;
  p1.outer_parallel = true;

  // Phase 2: x[j] += beta * B[i][j] * y[i] (transposed matvec).
  LoopNest p2;
  p2.name = "GEMVER.xt";
  p2.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p2.arrays = {{"B", {n, n}, 8}, {"x", {n}, 8}, {"y", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 3.0;
    s.text = "x[j] = x[j] + 1.2 * B[i][j] * y[i];";
    s.refs = {{0, {idx(0), idx(1)}, false},
              {1, {idx(1)}, false},
              {1, {idx(1)}, true},
              {2, {idx(0)}, false}};
    p2.stmts = {s};
  }
  p2.compiler_tilable = true;
  p2.outer_parallel = false;

  // Phase 3: w[i] += alpha * B[i][j] * x[j].
  LoopNest p3;
  p3.name = "GEMVER.w";
  p3.loops = {{"i", n, 1.0}, {"j", n, 1.0}};
  p3.arrays = {{"B", {n, n}, 8}, {"w", {n}, 8}, {"x", {n}, 8}};
  {
    Statement s;
    s.depth = 2;
    s.flops = 3.0;
    s.text = "w[i] = w[i] + 1.5 * B[i][j] * x[j];";
    s.refs = {{0, {idx(0), idx(1)}, false},
              {1, {idx(0)}, true},
              {2, {idx(1)}, false}};
    p3.stmts = {s};
  }
  p3.compiler_tilable = true;
  p3.outer_parallel = true;

  ParamSpace space;
  PhaseSpec ph1, ph2, ph3;
  ph1.nest = std::move(p1);
  ph1.bindings = {add_loop_params(space, "1I"), add_loop_params(space, "1J")};
  ph2.nest = std::move(p2);
  // The second phase shares the rank-2 phase's j parameters for its own j
  // loop (as the SPAPT instance does) and adds unroll-only control of i.
  LoopBinding ph2_i;
  ph2_i.unroll_param =
      static_cast<int>(space.add("U_2I", range_values(1, 32)));
  ph2.bindings = {ph2_i, add_loop_params(space, "2J")};
  ph3.nest = std::move(p3);
  ph3.bindings = {add_loop_params(space, "3I"), LoopBinding{}};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  const int vec = static_cast<int>(space.add("VEC", flag_values()));
  return std::make_shared<SpaptProblem>(
      "GEMVER", std::move(space),
      std::vector<PhaseSpec>{std::move(ph1), std::move(ph2),
                             std::move(ph3)},
      scr, vec, -1);
}

SpaptProblemPtr make_jacobi2d(std::int64_t n, std::int64_t steps) {
  // for t, i, j: a[i][j] = 0.2 * (b[i][j] + b[i-1][j] + b[i+1][j]
  //                              + b[i][j-1] + b[i][j+1])
  // The time loop is sequential and untiled; i/j carry the tuning knobs.
  LoopNest nest;
  nest.name = "JACOBI2D";
  nest.loops = {{"t", steps, 1.0}, {"i", n, 1.0}, {"j", n, 1.0}};
  nest.arrays = {{"a", {n, n}, 8}, {"b", {n, n}, 8}};
  Statement s;
  s.depth = 3;
  s.flops = 5.0;
  s.text = "a[i][j] = 0.2 * (b[i][j] + b[i][j-1] + b[i][j+1] + "
           "b[i-1][j] + b[i+1][j]);";
  s.refs = {{0, {idx(1), idx(2)}, true},
            {1, {idx(1), idx(2)}, false},
            {1, {idx(1), {{{2, 1}}, -1}}, false},
            {1, {idx(1), {{{2, 1}}, +1}}, false},
            {1, {{{{1, 1}}, -1}, idx(2)}, false},
            {1, {{{{1, 1}}, +1}, idx(2)}, false}};
  nest.stmts = {s};
  nest.compiler_tilable = false;  // time-loop dependence
  nest.outer_parallel = false;

  ParamSpace space;
  PhaseSpec phase;
  phase.nest = std::move(nest);
  phase.bindings = {LoopBinding{}, add_loop_params(space, "I"),
                    add_loop_params(space, "J")};
  const int scr = static_cast<int>(space.add("SCR", flag_values()));
  const int pad = static_cast<int>(space.add("PAD", flag_values()));
  return std::make_shared<SpaptProblem>(
      "JACOBI2D", std::move(space),
      std::vector<PhaseSpec>{std::move(phase)}, scr, -1, pad);
}

std::vector<SpaptProblemPtr> extended_problems() {
  return {make_bicg(), make_gesummv(), make_gemver(), make_jacobi2d()};
}

SpaptProblemPtr spapt_by_name(const std::string& name, std::int64_t n) {
  if (name == "MM") return make_mm(n > 0 ? n : 2000);
  if (name == "ATAX") return make_atax(n > 0 ? n : 10000);
  if (name == "COR") return make_cor(n > 0 ? n : 2000);
  if (name == "LU") return make_lu(n > 0 ? n : 2000);
  if (name == "BICG") return make_bicg(n > 0 ? n : 10000);
  if (name == "GESUMMV") return make_gesummv(n > 0 ? n : 8000);
  if (name == "GEMVER") return make_gemver(n > 0 ? n : 8000);
  if (name == "JACOBI2D") return make_jacobi2d(n > 0 ? n : 4000);
  throw Error("unknown SPAPT problem: " + name);
}

}  // namespace portatune::kernels
