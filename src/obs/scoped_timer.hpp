// RAII profiling span.
//
// A ScopedTimer measures the wall-clock time from construction to
// destruction and, on destruction, (a) emits a span event to the default
// sink and (b) records the duration into an optional histogram. When
// neither destination is live at construction time the timer is inert:
// no clock reads, no allocation — so instrumented hot paths cost nothing
// with observability disabled.
//
// When the span event will be emitted, the timer also *opens a causal
// span*: it allocates a span id and installs it as the thread-local
// SpanContext for its lifetime, so every event created inside the scope
// (including on worker threads, via ThreadPool's context capture)
// records this span as its parent. The emitted event carries the span id
// and the parent that was current at construction. A timer that is
// active only for its histogram does not open a span — it will emit no
// event, and children should attach to the nearest emitted ancestor.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/span_context.hpp"
#include "support/timer.hpp"

namespace portatune::obs {

class ScopedTimer {
 public:
  ScopedTimer(std::string name, std::string category,
              std::vector<Field> fields = {},
              Histogram* histogram = nullptr,
              Severity severity = Severity::Info)
      : active_(histogram != nullptr || enabled(severity)),
        severity_(severity),
        histogram_(histogram) {
    if (!active_) return;
    name_ = std::move(name);
    category_ = std::move(category);
    fields_ = std::move(fields);
    if (enabled(severity_)) {
      span_id_ = next_span_id();
      parent_span_id_ = current_span_context().span;
      scope_.emplace(SpanContext{span_id_});
    }
    timer_.reset();
  }

  ~ScopedTimer() {
    if (!active_) return;
    const double elapsed = timer_.seconds();
    if (histogram_ != nullptr) histogram_->observe(elapsed);
    if (span_id_ != 0 && enabled(severity_)) {
      Event e = make_span(severity_, std::move(name_), std::move(category_),
                          elapsed, std::move(fields_));
      e.span_id = span_id_;
      e.parent_span_id = parent_span_id_;
      emit(e);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attach a field after construction (e.g. a result computed inside the
  /// span). Dropped when the timer is inert.
  void add_field(Field field) {
    if (active_) fields_.push_back(std::move(field));
  }

  /// Seconds since construction (0 when inert).
  double seconds() const { return active_ ? timer_.seconds() : 0.0; }

  bool active() const noexcept { return active_; }
  /// The causal span this timer opened (0 when inert or histogram-only).
  std::uint64_t span_id() const noexcept { return span_id_; }

 private:
  bool active_;
  Severity severity_;
  Histogram* histogram_;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::string name_, category_;
  std::vector<Field> fields_;
  std::optional<SpanScope> scope_;
  WallTimer timer_;
};

}  // namespace portatune::obs
