// RAII profiling span.
//
// A ScopedTimer measures the wall-clock time from construction to
// destruction and, on destruction, (a) emits a span event to the default
// sink and (b) records the duration into an optional histogram. When
// neither destination is live at construction time the timer is inert:
// no clock reads, no allocation — so instrumented hot paths cost nothing
// with observability disabled.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/timer.hpp"

namespace portatune::obs {

class ScopedTimer {
 public:
  ScopedTimer(std::string name, std::string category,
              std::vector<Field> fields = {},
              Histogram* histogram = nullptr,
              Severity severity = Severity::Info)
      : active_(histogram != nullptr || enabled(severity)),
        severity_(severity),
        histogram_(histogram) {
    if (!active_) return;
    name_ = std::move(name);
    category_ = std::move(category);
    fields_ = std::move(fields);
    timer_.reset();
  }

  ~ScopedTimer() {
    if (!active_) return;
    const double elapsed = timer_.seconds();
    if (histogram_ != nullptr) histogram_->observe(elapsed);
    if (enabled(severity_))
      emit(make_span(severity_, std::move(name_), std::move(category_),
                     elapsed, std::move(fields_)));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attach a field after construction (e.g. a result computed inside the
  /// span). Dropped when the timer is inert.
  void add_field(Field field) {
    if (active_) fields_.push_back(std::move(field));
  }

  /// Seconds since construction (0 when inert).
  double seconds() const { return active_ ? timer_.seconds() : 0.0; }

  bool active() const noexcept { return active_; }

 private:
  bool active_;
  Severity severity_;
  Histogram* histogram_;
  std::string name_, category_;
  std::vector<Field> fields_;
  WallTimer timer_;
};

}  // namespace portatune::obs
