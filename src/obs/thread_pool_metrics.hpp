// Thread-pool telemetry published through the metrics registry.
//
// support::ThreadPool exposes a process-wide ThreadPoolObserver hook
// (dormant: one relaxed atomic load per task transition, no clock reads
// when none is installed). ThreadPoolMetrics is the standard
// implementation: it turns the callbacks into registry instruments so a
// metrics snapshot answers "was the pool the bottleneck?" —
//
//   pool.tasks_submitted / pool.tasks_completed   counters
//   pool.queue_depth                              gauge (last observed)
//   pool.workers_busy                             gauge (current)
//   pool.queue_wait_seconds                       histogram per task
//   pool.execute_seconds                          histogram per task
//
// All ThreadPools report to the one installed observer (the global pool,
// ParallelEvaluator pools, the experiment pool, resilience watchdogs),
// so the series aggregate process-wide; per-worker attribution comes
// from the event log (span tids), not from metrics.
#pragma once

#include <atomic>

#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"

namespace portatune::obs {

class ThreadPoolMetrics final : public ThreadPoolObserver {
 public:
  /// Instruments bind to `registry` (default: the registry current at
  /// construction).
  explicit ThreadPoolMetrics(MetricsRegistry* registry = nullptr);

  void on_submit(std::size_t queue_depth) noexcept override {
    submitted_->add();
    queue_depth_->set(static_cast<double>(queue_depth));
  }
  void on_start(double queue_wait_seconds,
                std::size_t queue_depth) noexcept override {
    queue_depth_->set(static_cast<double>(queue_depth));
    queue_wait_->observe(queue_wait_seconds);
    workers_busy_->set(static_cast<double>(
        busy_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  void on_finish(double execute_seconds) noexcept override {
    completed_->add();
    execute_->observe(execute_seconds);
    workers_busy_->set(static_cast<double>(
        busy_.fetch_sub(1, std::memory_order_relaxed) - 1));
  }

 private:
  Counter* submitted_;
  Counter* completed_;
  Gauge* queue_depth_;
  Gauge* workers_busy_;
  Histogram* queue_wait_;
  Histogram* execute_;
  /// Our own busy count: Gauge is last-write-wins, so concurrent workers
  /// need a shared counter to publish a consistent occupancy.
  std::atomic<long> busy_{0};
};

/// RAII installation: installs a ThreadPoolMetrics as the process
/// observer on construction, restores the previous observer on
/// destruction (tests; CLI observability sessions).
class ScopedThreadPoolMetrics {
 public:
  explicit ScopedThreadPoolMetrics(MetricsRegistry* registry = nullptr)
      : metrics_(registry), previous_(thread_pool_observer()) {
    set_thread_pool_observer(&metrics_);
  }
  ~ScopedThreadPoolMetrics() { set_thread_pool_observer(previous_); }

  ScopedThreadPoolMetrics(const ScopedThreadPoolMetrics&) = delete;
  ScopedThreadPoolMetrics& operator=(const ScopedThreadPoolMetrics&) = delete;

 private:
  ThreadPoolMetrics metrics_;
  ThreadPoolObserver* previous_;
};

}  // namespace portatune::obs
