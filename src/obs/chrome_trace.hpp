// Chrome trace-event exporter.
//
// Turns a stream of obs::Event records into the Trace Event Format JSON
// that chrome://tracing and https://ui.perfetto.dev load directly: span
// events become complete ("ph":"X") slices on a per-thread timeline,
// instantaneous events become "ph":"i" marks, and every event's fields
// ride along in "args" so the UI shows configs, outcomes, and
// FailureKinds on click. Spans whose parent lives on another thread (a
// search window fanned out to pool workers) additionally get flow
// arrows ("ph":"s"/"f") so cross-thread nesting stays visible.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace portatune::obs {

/// Parse a JSONL event log (as written by JsonlSink) back into Event
/// records, including span/parent causal ids. Malformed lines throw
/// portatune::Error with the offending line number. Shared by the trace
/// exporter and the portatune-report analyser.
std::vector<Event> read_event_log(std::istream& is);
std::vector<Event> read_event_log(const std::string& path);

/// Write a {"traceEvents":[...]} document from in-memory events (e.g. a
/// MemorySink's contents).
void write_chrome_trace(std::ostream& os, std::span<const Event> events);
void write_chrome_trace(const std::string& path,
                        std::span<const Event> events);

/// Convert a JSONL event log (as written by JsonlSink) into a Chrome
/// trace document. Returns the number of events converted. Malformed
/// lines throw portatune::Error with the offending line number.
std::size_t jsonl_to_chrome_trace(std::istream& is, std::ostream& os);

}  // namespace portatune::obs
