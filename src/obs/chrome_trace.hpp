// Chrome trace-event exporter.
//
// Turns a stream of obs::Event records into the Trace Event Format JSON
// that chrome://tracing and https://ui.perfetto.dev load directly: span
// events become complete ("ph":"X") slices on a per-thread timeline,
// instantaneous events become "ph":"i" marks, and every event's fields
// ride along in "args" so the UI shows configs, outcomes, and
// FailureKinds on click. Spans whose parent lives on another thread (a
// search window fanned out to pool workers) additionally get flow
// arrows ("ph":"s"/"f") so cross-thread nesting stays visible.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace portatune::obs {

/// Accounting for a lenient event-log read: how many non-empty lines
/// were seen and how many were skipped as malformed (a crashed run's
/// torn last line, a bit-flipped byte, ...).
struct LogReadStats {
  std::size_t lines = 0;    ///< non-empty lines seen
  std::size_t skipped = 0;  ///< malformed lines skipped
  std::string first_error;  ///< diagnostic for the first skipped line
};

/// Parse a JSONL event log (as written by JsonlSink) back into Event
/// records, including span/parent causal ids. With `stats == nullptr`
/// (the default) malformed lines throw portatune::Error with the
/// offending line number; with a stats object the read is lenient —
/// malformed lines are skipped and counted instead, so one torn line
/// cannot poison a whole report. Shared by the trace exporter and the
/// portatune-report analyser.
std::vector<Event> read_event_log(std::istream& is,
                                  LogReadStats* stats = nullptr);
std::vector<Event> read_event_log(const std::string& path,
                                  LogReadStats* stats = nullptr);

/// Write a {"traceEvents":[...]} document from in-memory events (e.g. a
/// MemorySink's contents).
void write_chrome_trace(std::ostream& os, std::span<const Event> events);
void write_chrome_trace(const std::string& path,
                        std::span<const Event> events);

/// Convert a JSONL event log (as written by JsonlSink) into a Chrome
/// trace document. Returns the number of events converted. Malformed
/// lines throw portatune::Error with the offending line number.
std::size_t jsonl_to_chrome_trace(std::istream& is, std::ostream& os);

}  // namespace portatune::obs
