#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <limits>

#include "support/error.hpp"

namespace portatune::obs {

namespace {

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Lock-free running min/max via CAS.
void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::atomic<MetricsRegistry*> g_current{nullptr};

}  // namespace

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(boundaries_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  PT_REQUIRE(std::is_sorted(boundaries_.begin(), boundaries_.end()),
             "histogram boundaries must be ascending");
}

void Histogram::observe(double v) noexcept {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  buckets_[static_cast<std::size_t>(it - boundaries_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::default_seconds_boundaries() {
  std::vector<double> b;
  for (double v = 1e-6; v <= 100.0; v *= 10.0) {
    b.push_back(v);
    b.push_back(v * 3.0);
  }
  return b;
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) < target) continue;
    // The target observation falls in bucket i: interpolate between its
    // edges. Clamp the edges to [min, max] so sparse outer buckets don't
    // invent values the run never observed.
    double lo = i == 0 ? min : boundaries[i - 1];
    double hi = i < boundaries.size() ? boundaries[i] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi <= lo) return lo;
    const double frac =
        (target - before) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> boundaries) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (boundaries.empty())
      boundaries = Histogram::default_seconds_boundaries();
    slot = std::make_unique<Histogram>(std::move(boundaries));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.mean = h->mean();
    hs.min = hs.count > 0 ? h->min() : 0.0;
    hs.max = hs.count > 0 ? h->max() : 0.0;
    hs.boundaries = h->boundaries();
    hs.buckets = h->bucket_counts();
    hs.p50 = hs.percentile(0.50);
    hs.p95 = hs.percentile(0.95);
    hs.p99 = hs.percentile(0.99);
    out.histograms.push_back(std::move(hs));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& MetricsRegistry::current() {
  MetricsRegistry* r = g_current.load(std::memory_order_acquire);
  return r != nullptr ? *r : global();
}

ScopedMetricsRedirect::ScopedMetricsRedirect(MetricsRegistry& registry)
    : previous_(g_current.load(std::memory_order_acquire)) {
  g_current.store(&registry, std::memory_order_release);
}

ScopedMetricsRedirect::~ScopedMetricsRedirect() {
  g_current.store(previous_, std::memory_order_release);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + render_double(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + h.name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + render_double(h.sum) +
           ",\"mean\":" + render_double(h.mean) +
           ",\"min\":" + render_double(h.min) +
           ",\"max\":" + render_double(h.max) +
           ",\"p50\":" + render_double(h.p50) +
           ",\"p95\":" + render_double(h.p95) +
           ",\"p99\":" + render_double(h.p99) + ",\"boundaries\":[";
    for (std::size_t i = 0; i < h.boundaries.size(); ++i) {
      if (i > 0) out += ",";
      out += render_double(h.boundaries[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

json::Value MetricsSnapshot::to_value() const {
  using json::Value;
  using Members = std::vector<std::pair<std::string, Value>>;
  Members counter_members;
  counter_members.reserve(counters.size());
  for (const auto& [name, v] : counters)
    counter_members.emplace_back(
        name, Value::make_number(static_cast<double>(v)));
  Members gauge_members;
  gauge_members.reserve(gauges.size());
  for (const auto& [name, v] : gauges)
    gauge_members.emplace_back(name, Value::make_number(v));
  Members histogram_members;
  histogram_members.reserve(histograms.size());
  for (const auto& h : histograms) {
    Members m;
    m.emplace_back("count",
                   Value::make_number(static_cast<double>(h.count)));
    m.emplace_back("sum", Value::make_number(h.sum));
    m.emplace_back("mean", Value::make_number(h.mean));
    m.emplace_back("min", Value::make_number(h.min));
    m.emplace_back("max", Value::make_number(h.max));
    m.emplace_back("p50", Value::make_number(h.p50));
    m.emplace_back("p95", Value::make_number(h.p95));
    m.emplace_back("p99", Value::make_number(h.p99));
    histogram_members.emplace_back(h.name,
                                   Value::make_object(std::move(m)));
  }
  Members top;
  top.emplace_back("counters", Value::make_object(std::move(counter_members)));
  top.emplace_back("gauges", Value::make_object(std::move(gauge_members)));
  top.emplace_back("histograms",
                   Value::make_object(std::move(histogram_members)));
  return Value::make_object(std::move(top));
}

void MetricsSnapshot::write_table(std::ostream& os) const {
  std::size_t width = 8;
  for (const auto& [name, v] : counters) width = std::max(width, name.size());
  for (const auto& [name, v] : gauges) width = std::max(width, name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());
  const int w = static_cast<int>(width);
  for (const auto& [name, v] : counters)
    os << std::left << std::setw(w) << name << "  counter  " << v << "\n";
  for (const auto& [name, v] : gauges)
    os << std::left << std::setw(w) << name << "  gauge    "
       << render_double(v) << "\n";
  for (const auto& h : histograms)
    os << std::left << std::setw(w) << h.name << "  histo    count="
       << h.count << " mean=" << render_double(h.mean)
       << " min=" << render_double(h.min)
       << " max=" << render_double(h.max)
       << " p50=" << render_double(h.p50)
       << " p95=" << render_double(h.p95)
       << " p99=" << render_double(h.p99) << "\n";
}

}  // namespace portatune::obs
