#include "obs/sampler.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace portatune::obs {

namespace {

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Timestamps need fixed-point microseconds: %.9g collapses epoch
/// seconds (~1.7e9) to ~10-second granularity.
std::string render_stamp(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::int64_t current_pid() {
#ifndef _WIN32
  return static_cast<std::int64_t>(getpid());
#else
  return 0;
#endif
}

}  // namespace

MetricsSampler::MetricsSampler(Options options)
    : options_(std::move(options)) {
  options_.period_seconds = std::max(0.01, options_.period_seconds);
  out_.open(options_.path, std::ios::app);
  PT_REQUIRE(out_.good(),
             "cannot open metrics time-series for append: " + options_.path);
  sample_now();  // anchor row: rates start from here, not process start
  thread_ = std::thread([this] { run(); });
}

MetricsSampler::~MetricsSampler() {
  {
    std::lock_guard lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final row: short-lived runs still get a complete closing sample.
  try {
    sample_now();
  } catch (const std::exception&) {
    // Destructor: a full disk must not turn teardown into a crash.
  }
}

void MetricsSampler::run() {
  std::unique_lock lock(stop_mutex_);
  while (!stop_) {
    const auto period = std::chrono::duration<double>(
        options_.period_seconds);
    if (stop_cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void MetricsSampler::sample_now() {
  std::lock_guard lock(sample_mutex_);
  sample_locked();
  if (options_.on_tick) options_.on_tick();
}

void MetricsSampler::sample_locked() {
  MetricsRegistry& registry = options_.registry != nullptr
                                  ? *options_.registry
                                  : MetricsRegistry::current();
  const MetricsSnapshot snapshot = registry.snapshot();
  const double t_mono = mono_now();
  const double t_wall =
      static_cast<double>(wall_micros_now()) / 1e6;
  const double dt = last_mono_ >= 0.0 ? t_mono - last_mono_ : 0.0;

  std::map<std::string, double> rates;
  if (dt > 0.0) {
    for (const auto& [name, value] : snapshot.counters) {
      const auto it = last_counters_.find(name);
      // A counter first seen this tick ramps from zero; a counter that
      // shrank was reset (registry reset between searches) and restarts.
      const std::uint64_t prev =
          it != last_counters_.end() && it->second <= value ? it->second
                                                            : 0;
      rates[name] = static_cast<double>(value - prev) / dt;
    }
  }
  last_counters_.clear();
  for (const auto& [name, value] : snapshot.counters)
    last_counters_[name] = value;
  last_mono_ = t_mono;

  out_ << render_row(snapshot, seq_, t_wall, t_mono, dt, rates) << "\n";
  out_.flush();  // each row must survive a SIGKILL right after the tick
  ++seq_;
}

std::uint64_t MetricsSampler::samples_written() const noexcept {
  std::lock_guard lock(sample_mutex_);
  return seq_;
}

std::string MetricsSampler::render_row(
    const MetricsSnapshot& snapshot, std::uint64_t seq, double t_wall,
    double t_mono, double dt,
    const std::map<std::string, double>& rates) {
  std::string out = "{\"seq\":" + std::to_string(seq);
  out += ",\"pid\":" + std::to_string(current_pid());
  out += ",\"t_wall\":" + render_stamp(t_wall);
  out += ",\"t_mono\":" + render_stamp(t_mono);
  out += ",\"dt\":" + render_double(dt);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"rates\":{";
  first = true;
  for (const auto& [name, value] : rates) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::escape(name) + "\":" + render_double(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::escape(name) + "\":" + render_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::escape(h.name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"mean\":" + render_double(h.mean);
    out += ",\"min\":" + render_double(h.min);
    out += ",\"max\":" + render_double(h.max);
    out += ",\"p50\":" + render_double(h.p50);
    out += ",\"p95\":" + render_double(h.p95);
    out += ",\"p99\":" + render_double(h.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace portatune::obs
