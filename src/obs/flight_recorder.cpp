#include "obs/flight_recorder.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "support/signal.hpp"

namespace portatune::obs {

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};
/// Re-entrancy latch: a dump that itself fails a requirement (unwritable
/// path surfacing as PT_REQUIRE in atomic_write_file) must not recurse
/// through the error hook into another dump.
std::atomic<bool> g_dumping{false};

void error_hook_trampoline(const char* what) noexcept {
  std::string reason = "pt_require: ";
  reason += what;
  dump_flight_recorder(reason.c_str());
}

void shutdown_hook_trampoline() noexcept {
  dump_flight_recorder("shutdown_signal");
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard lock(ring_mutex_);
  dump_path_ = std::move(path);
}

void FlightRecorder::write(const Event& event) {
  std::lock_guard lock(ring_mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<std::size_t>(seen_ % capacity_)] = event;
  }
  ++seen_;
}

std::vector<Event> FlightRecorder::snapshot() const {
  std::lock_guard lock(ring_mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: already oldest-first
  } else {
    const std::size_t start = static_cast<std::size_t>(seen_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i)
      out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::events_seen() const noexcept {
  std::lock_guard lock(ring_mutex_);
  return seen_;
}

std::uint64_t FlightRecorder::dumps_written() const noexcept {
  return dumps_.load(std::memory_order_relaxed);
}

void FlightRecorder::dump(const char* reason) noexcept {
  if (g_dumping.exchange(true, std::memory_order_acq_rel)) return;
  try {
    std::string path;
    std::uint64_t seen = 0;
    std::vector<Event> events;
    {
      std::lock_guard lock(ring_mutex_);
      path = dump_path_;
      seen = seen_;
    }
    if (path.empty()) {
      g_dumping.store(false, std::memory_order_release);
      return;
    }
    // Ring first, then flush the log: every event in this snapshot was
    // already offered to the default sink, so after the flush the dump's
    // tail is a suffix of (the same-severity slice of) the log.
    events = snapshot();
    flush_default_sink();

    std::string out = "{\"flight_recorder\":{\"reason\":\"";
    out += json::escape(reason != nullptr ? reason : "unknown");
    out += "\",\"events_seen\":" + std::to_string(seen);
    out += ",\"retained\":" + std::to_string(events.size());
    out += ",\"capacity\":" + std::to_string(capacity_);
    out += ",\"wall_micros\":" + std::to_string(wall_micros_now());
    out += "}}\n";
    for (const Event& e : events) {
      out += to_json(e);
      out += '\n';
    }
    atomic_write_file(path, out);
    dumps_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    if (!warned_.exchange(true))
      std::fprintf(stderr,
                   "portatune: flight recorder dump failed: %s\n", e.what());
  }
  g_dumping.store(false, std::memory_order_release);
}

FlightRecorder* global_flight_recorder() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

void set_global_flight_recorder(FlightRecorder* recorder) noexcept {
  g_recorder.store(recorder, std::memory_order_release);
}

void dump_flight_recorder(const char* reason) noexcept {
  if (FlightRecorder* recorder = global_flight_recorder())
    recorder->dump(reason);
}

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder& recorder)
    : previous_(global_flight_recorder()),
      previous_error_hook_(set_error_hook(&error_hook_trampoline)) {
  set_global_flight_recorder(&recorder);
  add_shutdown_hook(&shutdown_hook_trampoline);
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  remove_shutdown_hook(&shutdown_hook_trampoline);
  set_error_hook(previous_error_hook_);
  set_global_flight_recorder(previous_);
}

}  // namespace portatune::obs
