#include "obs/sink.hpp"

#include "support/error.hpp"

namespace portatune::obs {

JsonlSink::JsonlSink(const std::string& path) : owned_(path), os_(&owned_) {
  PT_REQUIRE(owned_.good(), "cannot open event log for writing: " + path);
}

JsonlSink::~JsonlSink() {
  // Destructor flush: a run that ends without an explicit flush (or that
  // aborted between flush points) still leaves complete lines on disk.
  os_->flush();
}

void JsonlSink::write(const Event& event) {
  *os_ << to_json(event) << '\n';
  count_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace portatune::obs
