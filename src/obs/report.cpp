#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace portatune::obs {

namespace {

const Field* find_field(const Event& e, std::string_view key) {
  for (const auto& f : e.fields)
    if (f.key == key) return &f;
  return nullptr;
}

double field_number(const Event& e, std::string_view key, double fallback) {
  const Field* f = find_field(e, key);
  if (f == nullptr || f->value.empty()) return fallback;
  return std::strtod(f->value.c_str(), nullptr);
}

bool field_is_true(const Event& e, std::string_view key) {
  const Field* f = find_field(e, key);
  return f != nullptr && f->value == "true";
}

/// A per-evaluation record: category "eval" plus an outcome field. This
/// matches ObservedEvaluator's events but not the batch-window or
/// retry-chain spans that share the category.
bool is_eval_event(const Event& e) {
  return e.category == "eval" && find_field(e, "ok") != nullptr;
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", s);
  return buf;
}

void pad_to(std::ostream& os, const std::string& s, std::size_t width) {
  os << s;
  for (std::size_t i = s.size(); i < width; ++i) os << ' ';
}

void pad_left(std::ostream& os, const std::string& s, std::size_t width) {
  for (std::size_t i = s.size(); i < width; ++i) os << ' ';
  os << s;
}

}  // namespace

Report analyze_events(std::span<const Event> events) {
  Report rep;
  rep.events = events.size();
  if (events.empty()) return rep;

  // Index span slices by id so causal chains can be walked regardless of
  // emit order (parents are emitted after their children).
  std::unordered_map<std::uint64_t, std::size_t> span_index;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.span_id != 0 && e.duration_seconds >= 0.0)
      span_index.emplace(e.span_id, i);
  }

  // Direct-child time per span (for self-time) and the causal health of
  // the log: an orphan references a parent that was never emitted.
  std::unordered_map<std::uint64_t, double> child_seconds;
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
  for (const Event& e : events) {
    t_min = std::min(t_min, e.mono_seconds);
    t_max = std::max(t_max, e.mono_seconds +
                                std::max(0.0, e.duration_seconds));
    if (e.duration_seconds >= 0.0) ++rep.spans;
    if (e.parent_span_id != 0) {
      if (span_index.count(e.parent_span_id) == 0)
        ++rep.orphan_events;
      else if (e.duration_seconds >= 0.0)
        child_seconds[e.parent_span_id] += e.duration_seconds;
    }
  }
  rep.wall_seconds = std::max(0.0, t_max - t_min);

  // Phases, workers, cells, searches.
  std::map<std::string, PhaseStat> phases;
  std::map<std::uint64_t, std::size_t> worker_index;  // tid -> workers[] idx
  std::unordered_map<std::uint64_t, std::size_t> cell_of_span;
  std::unordered_map<std::uint64_t, std::size_t> search_of_span;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];

    std::size_t widx;
    if (const auto it = worker_index.find(e.thread_id);
        it != worker_index.end()) {
      widx = it->second;
    } else {
      widx = rep.workers.size();
      worker_index.emplace(e.thread_id, widx);
      WorkerStat w;
      w.lane = static_cast<int>(widx);
      w.thread_id = e.thread_id;
      rep.workers.push_back(w);
    }
    ++rep.workers[widx].events;

    if (e.name == "guard.state") {
      GuardEventStat g;
      if (const Field* f = find_field(e, "search")) g.search = f->value;
      if (const Field* f = find_field(e, "from")) g.from = f->value;
      if (const Field* f = find_field(e, "to")) g.to = f->value;
      if (const Field* f = find_field(e, "reason")) g.reason = f->value;
      g.trust = field_number(e, "trust", 0.0);
      g.evals = static_cast<std::size_t>(field_number(e, "evals", 0.0));
      rep.guard_events.push_back(std::move(g));
    }

    if (e.duration_seconds < 0.0) continue;
    double self = e.duration_seconds;
    if (e.span_id != 0) {
      if (const auto it = child_seconds.find(e.span_id);
          it != child_seconds.end())
        self = std::max(0.0, self - it->second);
    }
    ++rep.workers[widx].spans;
    rep.workers[widx].busy_seconds += self;

    PhaseStat& p = phases[e.name];
    p.name = e.name;
    ++p.count;
    p.total_seconds += e.duration_seconds;
    p.self_seconds += self;
    p.max_seconds = std::max(p.max_seconds, e.duration_seconds);

    if (e.name == "experiment.cell" && e.span_id != 0) {
      cell_of_span.emplace(e.span_id, rep.cells.size());
      CellStat c;
      if (const Field* label = find_field(e, "label")) c.label = label->value;
      if (c.label.empty()) c.label = "cell." + std::to_string(e.span_id);
      c.seconds = e.duration_seconds;
      rep.cells.push_back(std::move(c));
    } else if (e.name.rfind("search.", 0) == 0 && e.span_id != 0) {
      // Only SearchSpanGuard spans carry an "algorithm" field; interior
      // search phases ("search.window", "search.RS_p.scan", ...) don't,
      // and must not capture the eval attribution below.
      const Field* algo = find_field(e, "algorithm");
      if (algo != nullptr) {
        search_of_span.emplace(e.span_id, rep.searches.size());
        SearchStat s;
        s.algorithm = algo->value;
        s.duration_seconds = e.duration_seconds;
        rep.searches.push_back(std::move(s));
      }
    }
  }
  for (auto& [name, p] : phases) rep.phases.push_back(p);

  // Attribute every eval record to its enclosing cell and search by
  // walking the causal chain. Per-search sequences are re-sorted by
  // timestamp because the sink logs in completion order, which a
  // parallel window interleaves.
  struct EvalRecord {
    double when;
    bool ok;
    double seconds;
  };
  std::vector<std::vector<EvalRecord>> per_search(rep.searches.size());
  for (const Event& e : events) {
    if (!is_eval_event(e)) continue;
    ++rep.eval_events;
    const bool ok = field_is_true(e, "ok");
    if (!ok) ++rep.eval_failures;
    if (field_number(e, "attempts", 1.0) > 1.0) ++rep.eval_retries;
    if (field_is_true(e, "batched")) ++rep.batched_evals;

    std::uint64_t cursor = e.parent_span_id;
    bool cell_done = false, search_done = false;
    // Depth cap: a corrupt log must not loop us forever.
    for (int depth = 0; cursor != 0 && depth < 64; ++depth) {
      if (!cell_done) {
        if (const auto it = cell_of_span.find(cursor);
            it != cell_of_span.end()) {
          ++rep.cells[it->second].evals;
          if (!ok) ++rep.cells[it->second].failures;
          cell_done = true;
        }
      }
      if (!search_done) {
        if (const auto it = search_of_span.find(cursor);
            it != search_of_span.end()) {
          per_search[it->second].push_back(
              EvalRecord{e.mono_seconds, ok, field_number(e, "seconds", 0.0)});
          search_done = true;
        }
      }
      if (cell_done && search_done) break;
      const auto it = span_index.find(cursor);
      cursor = it != span_index.end() ? events[it->second].parent_span_id : 0;
    }
  }

  for (std::size_t si = 0; si < rep.searches.size(); ++si) {
    SearchStat& s = rep.searches[si];
    auto& evals = per_search[si];
    std::stable_sort(evals.begin(), evals.end(),
                     [](const EvalRecord& a, const EvalRecord& b) {
                       return a.when < b.when;
                     });
    s.evals = evals.size();
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (!evals[i].ok) {
        ++s.failures;
        continue;
      }
      if (evals[i].seconds < best) {
        best = evals[i].seconds;
        s.best_seconds = best;
        s.evals_to_best = i + 1;
      }
    }
  }
  // Retry counts live on the eval events; per-search attribution reuses
  // the same chain walk above, so recompute cheaply here.
  for (const Event& e : events) {
    if (!is_eval_event(e) || field_number(e, "attempts", 1.0) <= 1.0)
      continue;
    std::uint64_t cursor = e.parent_span_id;
    for (int depth = 0; cursor != 0 && depth < 64; ++depth) {
      if (const auto it = search_of_span.find(cursor);
          it != search_of_span.end()) {
        ++rep.searches[it->second].retried;
        break;
      }
      const auto it = span_index.find(cursor);
      cursor = it != span_index.end() ? events[it->second].parent_span_id : 0;
    }
  }

  return rep;
}

void write_report(std::ostream& os, const Report& rep) {
  os << "portatune report\n"
     << "  events " << rep.events << "  spans " << rep.spans << "  threads "
     << rep.workers.size() << "  orphans " << rep.orphan_events << "  wall "
     << fmt_seconds(rep.wall_seconds) << " s\n"
     << "  evals " << rep.eval_events << "  failures " << rep.eval_failures
     << "  retried " << rep.eval_retries << "  batched "
     << rep.batched_evals << "  skipped_lines " << rep.skipped_lines
     << "\n";

  if (!rep.phases.empty()) {
    std::size_t w = 5;
    for (const auto& p : rep.phases) w = std::max(w, p.name.size());
    os << "\nphases\n  ";
    pad_to(os, "name", w);
    os << "  count     total_s      self_s      mean_s       max_s\n";
    for (const auto& p : rep.phases) {
      os << "  ";
      pad_to(os, p.name, w);
      pad_left(os, std::to_string(p.count), 7);
      pad_left(os, fmt_seconds(p.total_seconds), 12);
      pad_left(os, fmt_seconds(p.self_seconds), 12);
      pad_left(os, fmt_seconds(p.mean_seconds()), 12);
      pad_left(os, fmt_seconds(p.max_seconds), 12);
      os << "\n";
    }
  }

  if (!rep.workers.empty()) {
    os << "\nworkers\n  lane   events    spans      busy_s\n";
    for (const auto& w : rep.workers) {
      os << "  ";
      pad_left(os, std::to_string(w.lane), 4);
      pad_left(os, std::to_string(w.events), 9);
      pad_left(os, std::to_string(w.spans), 9);
      pad_left(os, fmt_seconds(w.busy_seconds), 12);
      os << "\n";
    }
  }

  if (!rep.cells.empty()) {
    std::size_t w = 5;
    for (const auto& c : rep.cells) w = std::max(w, c.label.size());
    os << "\ncells\n  ";
    pad_to(os, "label", w);
    os << "      cell_s    evals  failures\n";
    for (const auto& c : rep.cells) {
      os << "  ";
      pad_to(os, c.label, w);
      pad_left(os, fmt_seconds(c.seconds), 12);
      pad_left(os, std::to_string(c.evals), 9);
      pad_left(os, std::to_string(c.failures), 10);
      os << "\n";
    }
  }

  if (!rep.searches.empty()) {
    std::size_t w = 9;
    for (const auto& s : rep.searches) w = std::max(w, s.algorithm.size());
    os << "\nsearches\n  ";
    pad_to(os, "algorithm", w);
    os << "  evals  failures  retried  evals_to_best      best_s"
          "  duration_s\n";
    for (const auto& s : rep.searches) {
      os << "  ";
      pad_to(os, s.algorithm, w);
      pad_left(os, std::to_string(s.evals), 7);
      pad_left(os, std::to_string(s.failures), 10);
      pad_left(os, std::to_string(s.retried), 9);
      pad_left(os, std::to_string(s.evals_to_best), 15);
      pad_left(os, s.evals_to_best > 0 ? fmt_seconds(s.best_seconds) : "-",
               12);
      pad_left(os, fmt_seconds(s.duration_seconds), 12);
      os << "\n";
    }
  }

  if (!rep.guard_events.empty()) {
    std::size_t w = 6;
    for (const auto& g : rep.guard_events)
      w = std::max(w, g.search.size());
    os << "\nguard timeline\n  ";
    pad_to(os, "search", w);
    os << "  evals  ";
    pad_to(os, "from", 8);
    os << "  ";
    pad_to(os, "to", 8);
    pad_left(os, "trust", 9);
    os << "  reason\n";
    for (const auto& g : rep.guard_events) {
      os << "  ";
      pad_to(os, g.search, w);
      pad_left(os, std::to_string(g.evals), 7);
      os << "  ";
      pad_to(os, g.from, 8);
      os << "  ";
      pad_to(os, g.to, 8);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%+.3f", g.trust);
      pad_left(os, buf, 9);
      os << "  " << g.reason << "\n";
    }
  }
}

namespace {

Comparison compare_series(
    const std::vector<std::pair<std::string, double>>& baseline,
    const std::vector<std::pair<std::string, double>>& current,
    double threshold_percent) {
  Comparison out;
  out.threshold_percent = threshold_percent;
  std::map<std::string, double> cur(current.begin(), current.end());
  std::map<std::string, double> seen;
  for (const auto& [name, base] : baseline) {
    const auto it = cur.find(name);
    if (it == cur.end()) {
      out.only_baseline.push_back(name);
      continue;
    }
    DeltaRow row;
    row.name = name;
    row.baseline = base;
    row.current = it->second;
    // A vanishing baseline has no meaningful percent; report the delta
    // as zero rather than inventing an infinite regression.
    row.delta_percent =
        base > 0.0 ? (row.current - base) / base * 100.0 : 0.0;
    row.regressed = base > 0.0 && row.delta_percent >= threshold_percent;
    if (row.regressed) ++out.regressions;
    out.rows.push_back(std::move(row));
    seen.emplace(name, 0.0);
  }
  for (const auto& [name, value] : current)
    if (seen.count(name) == 0) out.only_current.push_back(name);
  return out;
}

}  // namespace

Comparison compare_reports(const Report& baseline, const Report& current,
                           double threshold_percent) {
  std::vector<std::pair<std::string, double>> base_series, cur_series;
  for (const auto& p : baseline.phases)
    base_series.emplace_back(p.name, p.total_seconds);
  for (const auto& p : current.phases)
    cur_series.emplace_back(p.name, p.total_seconds);
  return compare_series(base_series, cur_series, threshold_percent);
}

Comparison compare_bench_json(const std::string& baseline_path,
                              const std::string& current_path,
                              double threshold_percent) {
  const auto load = [](const std::string& path) {
    std::ifstream is(path);
    PT_REQUIRE(is.good(), "cannot open benchmark JSON: " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    const json::Value doc = json::Value::parse(buf.str());
    const json::Value* benchmarks = doc.find("benchmarks");
    PT_REQUIRE(benchmarks != nullptr && benchmarks->is_array(),
               "not a google-benchmark JSON file (no \"benchmarks\" "
               "array): " + path);
    std::vector<std::pair<std::string, double>> series;
    for (const json::Value& b : benchmarks->as_array()) {
      const json::Value* name = b.find("name");
      const json::Value* time = b.find("real_time");
      if (name == nullptr || time == nullptr) continue;
      // Aggregate rows (mean/median/stddev repetitions) would collide
      // with the base name; google-benchmark suffixes them, so first
      // occurrence per name is the per-run measurement.
      bool dup = false;
      for (const auto& [n, v] : series) dup = dup || n == name->as_string();
      if (!dup) series.emplace_back(name->as_string(), time->as_number());
    }
    return series;
  };
  return compare_series(load(baseline_path), load(current_path),
                        threshold_percent);
}

void write_comparison(std::ostream& os, const Comparison& c) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", c.threshold_percent);
  os << "comparison (regression threshold +" << buf << "%)\n";
  std::size_t w = 4;
  for (const auto& row : c.rows) w = std::max(w, row.name.size());
  if (!c.rows.empty()) {
    os << "  ";
    pad_to(os, "name", w);
    os << "     baseline      current     delta\n";
  }
  for (const auto& row : c.rows) {
    os << "  ";
    pad_to(os, row.name, w);
    pad_left(os, fmt_seconds(row.baseline), 13);
    pad_left(os, fmt_seconds(row.current), 13);
    std::snprintf(buf, sizeof buf, "%+.1f%%", row.delta_percent);
    pad_left(os, buf, 10);
    if (row.regressed) os << "  REGRESSED";
    os << "\n";
  }
  for (const auto& name : c.only_baseline)
    os << "  only in baseline: " << name << "\n";
  for (const auto& name : c.only_current)
    os << "  only in current:  " << name << "\n";
  if (c.regressions > 0) {
    std::snprintf(buf, sizeof buf, "%.1f", c.threshold_percent);
    os << "verdict: " << c.regressions << " series regressed by +" << buf
       << "% or more\n";
  } else {
    os << "verdict: no regressions\n";
  }
}

void write_metrics_summary(std::ostream& os, const std::string& path) {
  std::ifstream is(path);
  PT_REQUIRE(is.good(), "cannot open metrics snapshot: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const json::Value doc = json::Value::parse(buf.str());

  std::size_t w = 4;
  const auto widen = [&](const char* section) {
    if (const json::Value* v = doc.find(section); v != nullptr)
      for (const auto& [name, value] : v->as_object())
        w = std::max(w, name.size());
  };
  widen("counters");
  widen("gauges");
  widen("histograms");

  os << "metrics (" << path << ")\n";
  if (const json::Value* counters = doc.find("counters"))
    for (const auto& [name, value] : counters->as_object()) {
      os << "  ";
      pad_to(os, name, w);
      os << "  counter    "
         << static_cast<std::uint64_t>(value.as_number()) << "\n";
    }
  if (const json::Value* gauges = doc.find("gauges"))
    for (const auto& [name, value] : gauges->as_object()) {
      os << "  ";
      pad_to(os, name, w);
      os << "  gauge      " << fmt_seconds(value.as_number()) << "\n";
    }
  if (const json::Value* histograms = doc.find("histograms"))
    for (const auto& [name, value] : histograms->as_object()) {
      os << "  ";
      pad_to(os, name, w);
      os << "  histogram  count="
         << static_cast<std::uint64_t>(value.at("count").as_number())
         << " mean=" << fmt_seconds(value.at("mean").as_number())
         << " min=" << fmt_seconds(value.at("min").as_number())
         << " max=" << fmt_seconds(value.at("max").as_number());
      // Percentiles are a v2 addition to the snapshot format; summaries
      // of old snapshots simply omit them.
      if (const json::Value* p50 = value.find("p50"))
        os << " p50=" << fmt_seconds(p50->as_number());
      if (const json::Value* p95 = value.find("p95"))
        os << " p95=" << fmt_seconds(p95->as_number());
      if (const json::Value* p99 = value.find("p99"))
        os << " p99=" << fmt_seconds(p99->as_number());
      os << "\n";
    }
}

TimeseriesSummary analyze_timeseries(const std::string& path) {
  std::ifstream is(path);
  PT_REQUIRE(is.good(), "cannot open metrics time-series: " + path);

  TimeseriesSummary out;
  std::vector<std::int64_t> pids;
  double first_wall = 0.0, last_wall = 0.0;
  // name -> accumulated Series (running sum kept in `mean` until the end)
  std::map<std::string, TimeseriesSummary::Series> rates, gauges;
  const auto fold = [](std::map<std::string, TimeseriesSummary::Series>& m,
                       const json::Value& section) {
    for (const auto& [name, value] : section.as_object()) {
      TimeseriesSummary::Series& s = m[name];
      s.name = name;
      const double v = value.as_number();
      ++s.samples;
      s.mean += v;
      s.max = std::max(s.max, v);
      s.last = v;
    }
  };

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    json::Value row;
    try {
      row = json::Value::parse(line);
    } catch (const Error&) {
      ++out.skipped_lines;  // a SIGKILL can tear the final line
      continue;
    }
    ++out.rows;
    if (const json::Value* pid = row.find("pid")) {
      const auto p = static_cast<std::int64_t>(pid->as_number());
      if (std::find(pids.begin(), pids.end(), p) == pids.end())
        pids.push_back(p);
    }
    if (const json::Value* t = row.find("t_wall")) {
      if (out.rows == 1) first_wall = t->as_number();
      last_wall = t->as_number();
    }
    if (const json::Value* dt = row.find("dt"))
      out.sampled_seconds += dt->as_number();
    if (const json::Value* r = row.find("rates")) fold(rates, *r);
    if (const json::Value* g = row.find("gauges")) fold(gauges, *g);
  }
  out.segments = pids.size();
  out.wall_seconds = std::max(0.0, last_wall - first_wall);
  const auto finish = [](std::map<std::string,
                                  TimeseriesSummary::Series>& m,
                         std::vector<TimeseriesSummary::Series>& v) {
    for (auto& [name, s] : m) {
      if (s.samples > 0) s.mean /= static_cast<double>(s.samples);
      v.push_back(std::move(s));
    }
  };
  finish(rates, out.rates);
  finish(gauges, out.gauges);
  return out;
}

void write_timeseries_summary(std::ostream& os,
                              const TimeseriesSummary& summary,
                              const std::string& path) {
  os << "timeseries (" << path << ")\n";
  os << "  " << summary.rows << " samples over "
     << fmt_seconds(summary.wall_seconds) << "s wall ("
     << fmt_seconds(summary.sampled_seconds) << "s sampled), "
     << summary.segments << " segment"
     << (summary.segments == 1 ? "" : "s");
  if (summary.segments > 1)
    os << " — the run was killed and resumed "
       << summary.segments - 1 << " time"
       << (summary.segments == 2 ? "" : "s");
  if (summary.skipped_lines > 0)
    os << ", " << summary.skipped_lines << " torn line(s) skipped";
  os << "\n";

  std::size_t w = 4;
  for (const auto& s : summary.rates) w = std::max(w, s.name.size());
  for (const auto& s : summary.gauges) w = std::max(w, s.name.size());
  for (const auto& s : summary.rates) {
    os << "  ";
    pad_to(os, s.name, w);
    os << "  rate/s  mean=" << fmt_seconds(s.mean)
       << " max=" << fmt_seconds(s.max)
       << " last=" << fmt_seconds(s.last) << "\n";
  }
  for (const auto& s : summary.gauges) {
    os << "  ";
    pad_to(os, s.name, w);
    os << "  gauge   mean=" << fmt_seconds(s.mean)
       << " max=" << fmt_seconds(s.max)
       << " last=" << fmt_seconds(s.last) << "\n";
  }
}

}  // namespace portatune::obs
