#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace portatune::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    PT_REQUIRE(pos_ == text_.size(),
               "json: trailing garbage at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value::make_null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value::make_object(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    return Value::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_into(const Value& v, std::string& out);

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  out += escape(s);
  out += '"';
}

void dump_into(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::Null: out += "null"; return;
    case Value::Type::Bool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Type::Number: {
      const double n = v.as_number();
      if (!std::isfinite(n)) {
        out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", n);
      out += buf;
      return;
    }
    case Value::Type::String: dump_string(v.as_string(), out); return;
    case Value::Type::Array: {
      out += '[';
      const auto& items = v.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        dump_into(items[i], out);
      }
      out += ']';
      return;
    }
    case Value::Type::Object: {
      out += '{';
      const auto& members = v.as_object();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        dump_string(members[i].first, out);
        out += ':';
        dump_into(members[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  PT_REQUIRE(is_bool(), "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  PT_REQUIRE(is_number(), "json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  PT_REQUIRE(is_string(), "json: not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  PT_REQUIRE(is_array(), "json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  PT_REQUIRE(is_object(), "json: not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  PT_REQUIRE(v != nullptr, "json: missing key '" + std::string(key) + "'");
  return *v;
}

Value Value::parse(std::string_view text) { return Parser(text).run(); }

std::string Value::dump() const {
  std::string out;
  dump_into(*this, out);
  return out;
}

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.type_ = Type::Number;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::Array;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> m) {
  Value v;
  v.type_ = Type::Object;
  v.object_ = std::move(m);
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace portatune::obs::json
