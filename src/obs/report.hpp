// Offline analysis of observability output (the portatune-report tool).
//
// Consumes the JSONL event log a run wrote (via --log-json) and distils
// it into the questions a tuning engineer actually asks:
//
//   * where did the time go?      per-phase totals with self vs child
//                                 time, per-worker occupancy, per-cell
//                                 breakdowns of experiment grids
//   * did the search converge?    per-search eval counts, failures,
//                                 retries, best value and evals-to-best
//   * did this run regress?       phase-by-phase percent deltas against
//                                 a baseline log (or google-benchmark
//                                 JSON), with a configurable threshold
//
// All analysis is pure (events in, structs out) so tests can drive it
// without files; the CLI in examples/portatune_report.cpp is a thin
// argument parser around these functions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace portatune::obs {

/// Aggregate over every span sharing one name ("phase.fit",
/// "search.window", "eval", ...). Self time subtracts the direct
/// children's durations, so a phase that merely waits on worker-side
/// spans shows near-zero self time.
struct PhaseStat {
  std::string name;
  std::size_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
  double max_seconds = 0.0;

  double mean_seconds() const noexcept {
    return count > 0 ? total_seconds / static_cast<double>(count) : 0.0;
  }
};

/// One thread lane (dense ids in order of first appearance, matching the
/// Chrome trace's lanes for a log written in the same order).
struct WorkerStat {
  int lane = 0;
  std::uint64_t thread_id = 0;
  std::size_t events = 0;
  std::size_t spans = 0;
  double busy_seconds = 0.0;  ///< sum of span self time on this thread
};

/// One experiment grid cell ("experiment.cell" span), with the
/// evaluations attributed to it via the causal span chain.
struct CellStat {
  std::string label;
  double seconds = 0.0;
  std::size_t evals = 0;
  std::size_t failures = 0;
};

/// One search invocation ("search.<algo>" span). Counts come from the
/// eval events nested (transitively) under the search span; best /
/// evals-to-best track the minimum successful runtime in event order.
struct SearchStat {
  std::string algorithm;
  double duration_seconds = 0.0;
  std::size_t evals = 0;
  std::size_t failures = 0;
  std::size_t retried = 0;  ///< evaluations that needed > 1 attempt
  double best_seconds = 0.0;
  std::size_t evals_to_best = 0;  ///< 1-based; 0 when no eval succeeded
};

/// One guard state transition ("guard.state" instant, emitted by the
/// TrustMonitor of a guarded RS_p / RS_b run), in event order.
struct GuardEventStat {
  std::string search;  ///< emitting search label ("RS_p", "RS_b")
  std::string from;
  std::string to;
  std::string reason;
  double trust = 0.0;
  std::size_t evals = 0;
};

struct Report {
  std::size_t events = 0;
  std::size_t spans = 0;
  /// Events whose parent span id never appears as an emitted span — a
  /// broken causal chain (or a parent filtered below the sink severity).
  std::size_t orphan_events = 0;
  /// Malformed JSONL lines the (lenient) log read skipped; set by the
  /// caller from LogReadStats, not by analyze_events.
  std::size_t skipped_lines = 0;
  double wall_seconds = 0.0;  ///< max span end minus min timestamp

  std::size_t eval_events = 0;
  std::size_t eval_failures = 0;
  std::size_t eval_retries = 0;
  std::size_t batched_evals = 0;

  std::vector<PhaseStat> phases;      ///< sorted by name
  std::vector<WorkerStat> workers;    ///< by lane
  std::vector<CellStat> cells;        ///< in span order
  std::vector<SearchStat> searches;   ///< in span order
  std::vector<GuardEventStat> guard_events;  ///< in event order
};

/// Build a Report from parsed events (see read_event_log).
Report analyze_events(std::span<const Event> events);

/// Render the human-readable report.
void write_report(std::ostream& os, const Report& report);

/// One compared series. delta_percent is (current - baseline) /
/// baseline * 100; `regressed` marks slowdowns at or beyond the
/// threshold.
struct DeltaRow {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double delta_percent = 0.0;
  bool regressed = false;
};

struct Comparison {
  double threshold_percent = 20.0;
  std::vector<DeltaRow> rows;               ///< names present in both
  std::vector<std::string> only_baseline;   ///< disappeared series
  std::vector<std::string> only_current;    ///< new series (never regress)
  std::size_t regressions = 0;

  bool regressed() const noexcept { return regressions > 0; }
};

/// Phase-by-phase total-time comparison of two analysed logs.
Comparison compare_reports(const Report& baseline, const Report& current,
                           double threshold_percent = 20.0);

/// Compare two google-benchmark JSON files (--benchmark_out format) by
/// per-benchmark real_time. Throws portatune::Error on malformed input.
Comparison compare_bench_json(const std::string& baseline_path,
                              const std::string& current_path,
                              double threshold_percent = 20.0);

/// Render a comparison table plus the regression verdict line.
void write_comparison(std::ostream& os, const Comparison& comparison);

/// Render a compact summary of a metrics snapshot file (the
/// --metrics-out JSON: {"counters":{},"gauges":{},"histograms":{}}).
void write_metrics_summary(std::ostream& os, const std::string& path);

/// Aggregate view of one metrics time-series (metrics_timeseries.jsonl,
/// written by obs::MetricsSampler): how the run's throughput, queue
/// depth, and guard trust moved over its lifetime. A killed-and-resumed
/// run appends from each process in turn; `segments` counts the distinct
/// pids, so "how many times did this run die?" is answered directly.
struct TimeseriesSummary {
  std::size_t rows = 0;
  std::size_t skipped_lines = 0;  ///< torn/malformed lines (lenient read)
  std::size_t segments = 0;       ///< distinct writer pids
  double wall_seconds = 0.0;      ///< last t_wall minus first t_wall
  double sampled_seconds = 0.0;   ///< sum of tick intervals (live time)

  /// One tracked series with its motion over the run.
  struct Series {
    std::string name;
    std::size_t samples = 0;
    double mean = 0.0;
    double max = 0.0;
    double last = 0.0;
  };
  std::vector<Series> rates;   ///< per-counter throughput (events/sec)
  std::vector<Series> gauges;  ///< pool occupancy, queue depth, trust...
};

/// Parse and aggregate a sampler time-series file. Lenient like
/// read_event_log: malformed lines (e.g. the torn final line of a
/// SIGKILL'd run) are skipped and counted. Throws portatune::Error only
/// when the file cannot be opened.
TimeseriesSummary analyze_timeseries(const std::string& path);

/// Render the time-series section (throughput, queue depth, guard trust
/// over time) of `portatune_report --timeseries`.
void write_timeseries_summary(std::ostream& os,
                              const TimeseriesSummary& summary,
                              const std::string& path);

}  // namespace portatune::obs
