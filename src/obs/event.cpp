#include "obs/event.hpp"

#include <cmath>
#include <cstdio>
#include <thread>

#include "support/error.hpp"
#include "support/span_context.hpp"

namespace portatune::obs {

namespace {

/// Shortest round-trippable rendering of a double (JSON-safe: NaN and
/// infinities are not valid JSON numbers, so they render as null).
std::string render_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer a shorter form when it round-trips exactly.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.9g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  return back == v ? shorter : buf;
}

std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Touch the epoch at static-init time so mono timestamps approximate
/// "since process start" even when the first event is emitted late.
[[maybe_unused]] const auto g_epoch_init = process_epoch();

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "unknown";
}

Severity severity_from_string(const std::string& name) {
  if (name == "debug") return Severity::Debug;
  if (name == "info") return Severity::Info;
  if (name == "warn") return Severity::Warn;
  if (name == "error") return Severity::Error;
  throw Error("unknown log level: " + name +
              " (expected debug|info|warn|error)");
}

Field::Field(std::string k, double v)
    : key(std::move(k)), value(render_double(v)), quoted(false) {}

double mono_now() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

std::int64_t wall_micros_now() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double wall_unix_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t current_thread_id() noexcept {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

Event make_instant(Severity severity, std::string name, std::string category,
                   std::vector<Field> fields) {
  Event e;
  e.severity = severity;
  e.name = std::move(name);
  e.category = std::move(category);
  e.mono_seconds = mono_now();
  e.wall_micros = wall_micros_now();
  e.thread_id = current_thread_id();
  e.parent_span_id = current_span_context().span;
  e.fields = std::move(fields);
  return e;
}

Event make_span(Severity severity, std::string name, std::string category,
                double duration_seconds, std::vector<Field> fields) {
  Event e = make_instant(severity, std::move(name), std::move(category),
                         std::move(fields));
  e.duration_seconds = duration_seconds < 0.0 ? 0.0 : duration_seconds;
  e.mono_seconds -= e.duration_seconds;  // timestamp marks the span start
  if (e.mono_seconds < 0.0) e.mono_seconds = 0.0;
  return e;
}

std::string to_json(const Event& event) {
  std::string out;
  out.reserve(128 + event.fields.size() * 24);
  out += "{\"ts\":";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9f", event.mono_seconds);
    out += buf;
  }
  out += ",\"wall_us\":" + std::to_string(event.wall_micros);
  out += ",\"level\":\"";
  out += to_string(event.severity);
  out += "\",\"name\":\"";
  json_escape_into(out, event.name);
  out += "\",\"cat\":\"";
  json_escape_into(out, event.category);
  out += "\"";
  if (event.duration_seconds >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9f", event.duration_seconds);
    out += ",\"dur_s\":";
    out += buf;
  }
  out += ",\"tid\":" + std::to_string(event.thread_id);
  if (event.span_id != 0)
    out += ",\"span\":" + std::to_string(event.span_id);
  if (event.parent_span_id != 0)
    out += ",\"parent\":" + std::to_string(event.parent_span_id);
  for (const auto& f : event.fields) {
    out += ",\"";
    json_escape_into(out, f.key);
    out += "\":";
    if (f.quoted) {
      out += "\"";
      json_escape_into(out, f.value);
      out += "\"";
    } else {
      out += f.value.empty() ? "null" : f.value;
    }
  }
  out += "}";
  return out;
}

}  // namespace portatune::obs
