// ObservedEvaluator: per-evaluation telemetry as an Evaluator decorator.
//
// Wraps any Evaluator and, for every evaluate() call, (a) updates the
// metrics registry (eval.calls / eval.attempts / eval.failures[.kind]
// counters, eval.seconds and eval.latency_seconds histograms) and
// (b) emits one "eval" event carrying the configuration, outcome,
// FailureKind, attempt count, and wall-clock latency.
//
// Composes freely with the resilience decorators. The recommended stack
// for per-*attempt* events is
//
//     backend -> FaultInjectingEvaluator -> ObservedEvaluator
//             -> ResilientEvaluator -> search
//
// (the observer sees each raw attempt, including injected faults); wrap
// the ResilientEvaluator instead to observe per-*call* outcomes after
// retries collapse.
//
// Header-only on purpose: it lives in the obs layer but needs the tuner's
// Evaluator interface, and inlining it here keeps the library dependency
// graph acyclic (obs never links tuner).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/timer.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::obs {

class ObservedEvaluator final : public tuner::Evaluator {
 public:
  /// The inner evaluator must outlive this decorator. Instruments are
  /// bound to `registry` (default: the registry current at construction).
  explicit ObservedEvaluator(tuner::Evaluator& inner,
                             std::string label = "eval",
                             MetricsRegistry* registry = nullptr)
      : inner_(inner), label_(std::move(label)) {
    MetricsRegistry& r =
        registry != nullptr ? *registry : MetricsRegistry::current();
    calls_ = &r.counter(label_ + ".calls");
    attempts_ = &r.counter(label_ + ".attempts");
    failures_ = &r.counter(label_ + ".failures");
    transient_ = &r.counter(label_ + ".failures.transient");
    deterministic_ = &r.counter(label_ + ".failures.deterministic");
    timeouts_ = &r.counter(label_ + ".failures.timeout");
    seconds_ = &r.histogram(label_ + ".seconds");
    latency_ = &r.histogram(label_ + ".latency_seconds");
  }

  const tuner::ParamSpace& space() const override { return inner_.space(); }
  /// Thread-safe when the inner evaluator is: the instruments are relaxed
  /// atomics and sinks serialize writers internally, so this decorator
  /// composes under a ParallelEvaluator without extra locking.
  tuner::EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  tuner::Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override {
    WallTimer timer;
    const tuner::EvalResult r = inner_.evaluate(config);
    const double latency = timer.seconds();

    calls_->add();
    attempts_->add(r.attempts);
    latency_->observe(latency);
    if (r.ok) {
      seconds_->observe(r.seconds);
    } else {
      failures_->add();
      switch (r.failure_kind) {
        case tuner::FailureKind::Transient: transient_->add(); break;
        case tuner::FailureKind::Timeout: timeouts_->add(); break;
        default: deterministic_->add(); break;
      }
    }

    // Failures are logged a level up so a Warn-threshold sink still
    // captures every unhealthy evaluation.
    const Severity severity = r.ok ? Severity::Debug : Severity::Warn;
    if (enabled(severity)) {
      std::vector<Field> fields;
      fields.reserve(8);
      fields.emplace_back("config", render_config(config));
      fields.emplace_back("ok", r.ok);
      fields.emplace_back("kind", tuner::to_string(r.failure_kind));
      fields.emplace_back("attempts", r.attempts);
      fields.emplace_back("latency_s", latency);
      if (r.ok) fields.emplace_back("seconds", r.seconds);
      if (r.overhead_seconds > 0.0)
        fields.emplace_back("overhead_s", r.overhead_seconds);
      if (!r.ok) fields.emplace_back("error", r.error);
      emit(make_span(severity, label_, "eval", latency, std::move(fields)));
    }
    return r;
  }

  const std::string& label() const noexcept { return label_; }

 private:
  static std::string render_config(const tuner::ParamConfig& config) {
    std::string out;
    for (std::size_t i = 0; i < config.size(); ++i) {
      if (i > 0) out += '/';
      out += std::to_string(config[i]);
    }
    return out;
  }

  tuner::Evaluator& inner_;
  std::string label_;
  Counter* calls_;
  Counter* attempts_;
  Counter* failures_;
  Counter* transient_;
  Counter* deterministic_;
  Counter* timeouts_;
  Histogram* seconds_;
  Histogram* latency_;
};

}  // namespace portatune::obs
