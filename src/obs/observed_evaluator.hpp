// ObservedEvaluator: per-evaluation telemetry as an Evaluator decorator.
//
// Wraps any Evaluator and, for every evaluate() call, (a) updates the
// metrics registry (eval.calls / eval.attempts / eval.failures[.kind]
// counters, eval.seconds and eval.latency_seconds histograms) and
// (b) emits one "eval" event carrying the configuration, outcome,
// FailureKind, attempt count, and wall-clock latency. Each evaluation
// opens a causal span for its duration, so any event the inner evaluator
// emits (and the eval event itself) nests under the search window /
// retry chain that issued the call.
//
// Composes freely with the resilience decorators. The recommended stack
// for per-*attempt* events is
//
//     backend -> FaultInjectingEvaluator -> ObservedEvaluator
//             -> ResilientEvaluator -> search
//
// (the observer sees each raw attempt, including injected faults); wrap
// the ResilientEvaluator instead to observe per-*call* outcomes after
// retries collapse.
//
// Batch path: evaluate_batch() emits one "<label>.batch" window span and
// instruments every configuration in the window. When the inner
// evaluator is itself batch-capable (preferred_batch > 1 — e.g. an
// observer wrapped *around* a ParallelEvaluator), the whole window is
// forwarded to the inner evaluate_batch so its parallelism is preserved,
// and per-eval events are emitted from the returned results (their
// latency is then the measured run time plus retry overhead — the
// per-call wall clock is not observable from outside the fan-out).
// Serial inners take the default per-evaluate() path with exact
// latencies. Either way a parallel run emits the same per-eval events a
// serial run does.
//
// Header-only on purpose: it lives in the obs layer but needs the tuner's
// Evaluator interface, and inlining it here keeps the library dependency
// graph acyclic (obs never links tuner).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "support/span_context.hpp"
#include "support/timer.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::obs {

class ObservedEvaluator final : public tuner::Evaluator {
 public:
  /// The inner evaluator must outlive this decorator. Instruments are
  /// bound to `registry` (default: the registry current at construction).
  explicit ObservedEvaluator(tuner::Evaluator& inner,
                             std::string label = "eval",
                             MetricsRegistry* registry = nullptr)
      : inner_(inner),
        label_(std::move(label)),
        batch_label_(label_ + ".batch") {
    MetricsRegistry& r =
        registry != nullptr ? *registry : MetricsRegistry::current();
    calls_ = &r.counter(label_ + ".calls");
    attempts_ = &r.counter(label_ + ".attempts");
    failures_ = &r.counter(label_ + ".failures");
    transient_ = &r.counter(label_ + ".failures.transient");
    deterministic_ = &r.counter(label_ + ".failures.deterministic");
    timeouts_ = &r.counter(label_ + ".failures.timeout");
    seconds_ = &r.histogram(label_ + ".seconds");
    latency_ = &r.histogram(label_ + ".latency_seconds");
  }

  const tuner::ParamSpace& space() const override { return inner_.space(); }
  /// Thread-safe when the inner evaluator is: the instruments are relaxed
  /// atomics and sinks serialize writers internally, so this decorator
  /// composes under a ParallelEvaluator without extra locking.
  tuner::EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  tuner::Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override {
    WallTimer timer;
    // Open a span for the evaluation so events emitted by the inner
    // layers (and the eval event below) nest under this call.
    std::uint64_t span_id = 0, parent_id = 0;
    std::optional<SpanScope> scope;
    if (enabled(Severity::Debug)) {
      span_id = next_span_id();
      parent_id = current_span_context().span;
      scope.emplace(SpanContext{span_id});
    }
    const tuner::EvalResult r = inner_.evaluate(config);
    const double latency = timer.seconds();
    record(config, r, latency, span_id, parent_id, /*batched=*/false);
    return r;
  }

  std::vector<tuner::EvalResult> evaluate_batch(
      std::span<const tuner::ParamConfig> batch) override {
    if (batch.size() <= 1) return tuner::Evaluator::evaluate_batch(batch);
    // One window span per batch; worker-side or per-eval events nest
    // under it (fields are only materialized when a sink is listening).
    std::optional<ScopedTimer> window;
    if (enabled(Severity::Debug))
      window.emplace(batch_label_, "eval",
                     std::vector<Field>{{"batch", batch.size()}}, nullptr,
                     Severity::Debug);
    if (inner_.capabilities().preferred_batch <= 1) {
      // Serial inner: the default loop goes through evaluate(), which
      // instruments each call with its exact wall-clock latency.
      return tuner::Evaluator::evaluate_batch(batch);
    }
    const auto results = inner_.evaluate_batch(batch);
    for (std::size_t i = 0; i < results.size() && i < batch.size(); ++i) {
      const tuner::EvalResult& r = results[i];
      record(batch[i], r, r.seconds + r.overhead_seconds, 0,
             window ? window->span_id() : current_span_context().span,
             /*batched=*/true);
    }
    return results;
  }

  const std::string& label() const noexcept { return label_; }

 private:
  /// Shared per-evaluation accounting: instrument updates plus one eval
  /// event. `batched` marks events reconstructed from a forwarded batch,
  /// whose latency is seconds + overhead rather than a measured wall
  /// clock.
  void record(const tuner::ParamConfig& config, const tuner::EvalResult& r,
              double latency, std::uint64_t span_id, std::uint64_t parent_id,
              bool batched) {
    calls_->add();
    attempts_->add(r.attempts);
    latency_->observe(latency);
    if (r.ok) {
      seconds_->observe(r.seconds);
    } else {
      failures_->add();
      switch (r.failure_kind) {
        case tuner::FailureKind::Transient: transient_->add(); break;
        case tuner::FailureKind::Timeout: timeouts_->add(); break;
        default: deterministic_->add(); break;
      }
    }

    // Failures are logged a level up so a Warn-threshold sink still
    // captures every unhealthy evaluation.
    const Severity severity = r.ok ? Severity::Debug : Severity::Warn;
    if (enabled(severity)) {
      std::vector<Field> fields;
      fields.reserve(8);
      fields.emplace_back("config", render_config(config));
      fields.emplace_back("ok", r.ok);
      fields.emplace_back("kind", tuner::to_string(r.failure_kind));
      fields.emplace_back("attempts", r.attempts);
      fields.emplace_back("latency_s", latency);
      if (r.ok) fields.emplace_back("seconds", r.seconds);
      if (r.overhead_seconds > 0.0)
        fields.emplace_back("overhead_s", r.overhead_seconds);
      if (batched) fields.emplace_back("batched", true);
      if (!r.ok) fields.emplace_back("error", r.error);
      Event e = make_span(severity, label_, "eval", latency,
                          std::move(fields));
      e.span_id = span_id;
      // With our own span scope still installed, make_span would have
      // recorded *this* span as its own parent; restore the real one.
      if (span_id != 0 || parent_id != 0) e.parent_span_id = parent_id;
      emit(e);
    }
  }

  static std::string render_config(const tuner::ParamConfig& config) {
    std::string out;
    for (std::size_t i = 0; i < config.size(); ++i) {
      if (i > 0) out += '/';
      out += std::to_string(config[i]);
    }
    return out;
  }

  tuner::Evaluator& inner_;
  std::string label_;
  std::string batch_label_;
  Counter* calls_;
  Counter* attempts_;
  Counter* failures_;
  Counter* transient_;
  Counter* deterministic_;
  Counter* timeouts_;
  Histogram* seconds_;
  Histogram* latency_;
};

}  // namespace portatune::obs
