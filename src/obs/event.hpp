// Structured observability events.
//
// An Event is one timestamped, categorised record of something the tuner
// did: a search phase span, one evaluation attempt, a model refit, an
// abort. Events carry both a monotonic timestamp (relative to process
// start, suitable for ordering and for the Chrome trace timeline) and a
// wall-clock timestamp (for correlating logs across processes), plus a
// flat key/value field list that serialises to one JSON object per line.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace portatune::obs {

enum class Severity : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
};

const char* to_string(Severity s) noexcept;
/// Parse "debug" / "info" / "warn" / "error"; throws portatune::Error on
/// anything else.
Severity severity_from_string(const std::string& name);

/// One key/value field of an event. Values are pre-rendered; `quoted`
/// distinguishes JSON strings from raw numbers/booleans.
struct Field {
  std::string key;
  std::string value;
  bool quoted = true;

  Field(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  Field(std::string k, const char* v) : key(std::move(k)), value(v) {}
  Field(std::string k, double v);
  Field(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}
  Field(std::string k, std::uint64_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  Field(std::string k, std::int64_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  Field(std::string k, int v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
};

struct Event {
  Severity severity = Severity::Info;
  std::string name;      ///< what happened, e.g. "eval", "search", "fit"
  std::string category;  ///< subsystem: "search", "ml", "sim", "experiment"
  /// Monotonic seconds since the process observability epoch (first use).
  double mono_seconds = 0.0;
  /// Wall-clock microseconds since the Unix epoch.
  std::int64_t wall_micros = 0;
  /// Span length in seconds; negative for instantaneous events. Spans
  /// become "complete" slices on the Chrome trace timeline.
  double duration_seconds = -1.0;
  std::uint64_t thread_id = 0;
  /// Causal identity: the span this event *is* (0 for instants and
  /// unscoped spans) and the span it happened *inside* (0 at top level).
  /// make_instant/make_span fill parent_span_id from the thread-local
  /// SpanContext, so events parent correctly even when the context was
  /// carried across a ThreadPool hop; span_id is assigned by whichever
  /// instrumentation site opened the span (ScopedTimer, SearchSpanGuard,
  /// ObservedEvaluator).
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::vector<Field> fields;
};

/// Monotonic seconds since the process observability epoch.
double mono_now() noexcept;
/// Wall-clock microseconds since the Unix epoch.
std::int64_t wall_micros_now() noexcept;
/// Wall-clock seconds since the Unix epoch (TraceEntry timestamps).
double wall_unix_now() noexcept;
/// Stable small integer id of the calling thread.
std::uint64_t current_thread_id() noexcept;

/// Build an instantaneous event stamped with the current time and thread.
Event make_instant(Severity severity, std::string name, std::string category,
                   std::vector<Field> fields = {});
/// Build a span event covering the last `duration_seconds` seconds (the
/// monotonic timestamp is backdated to the span start).
Event make_span(Severity severity, std::string name, std::string category,
                double duration_seconds, std::vector<Field> fields = {});

/// Serialise one event as a single-line JSON object (no trailing newline).
std::string to_json(const Event& event);

}  // namespace portatune::obs
