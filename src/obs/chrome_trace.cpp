#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace portatune::obs {

namespace {

/// Dense small ids for the trace viewer's thread lanes.
class TidMap {
 public:
  int lane(std::uint64_t thread_id) {
    const auto [it, inserted] =
        lanes_.emplace(thread_id, static_cast<int>(lanes_.size()));
    (void)inserted;
    return it->second;
  }

 private:
  std::map<std::uint64_t, int> lanes_;
};

void write_micros(std::ostream& os, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  os << buf;
}

void write_one(std::ostream& os, const Event& e, TidMap& tids, bool first) {
  if (!first) os << ",\n";
  const bool span = e.duration_seconds >= 0.0;
  os << "{\"name\":\"" << json::escape(e.name) << "\",\"cat\":\""
     << json::escape(e.category) << "\",\"ph\":\"" << (span ? 'X' : 'i')
     << "\",\"ts\":";
  write_micros(os, e.mono_seconds);
  if (span) {
    os << ",\"dur\":";
    write_micros(os, e.duration_seconds);
  } else {
    os << ",\"s\":\"t\"";
  }
  os << ",\"pid\":1,\"tid\":" << tids.lane(e.thread_id);
  os << ",\"args\":{\"level\":\"" << to_string(e.severity) << "\"";
  for (const auto& f : e.fields) {
    os << ",\"" << json::escape(f.key) << "\":";
    if (f.quoted)
      os << "\"" << json::escape(f.value) << "\"";
    else
      os << (f.value.empty() ? "null" : f.value);
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const Event> events) {
  TidMap tids;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : events) {
    write_one(os, e, tids, first);
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(const std::string& path,
                        std::span<const Event> events) {
  std::ofstream os(path);
  PT_REQUIRE(os.good(), "cannot open chrome trace for writing: " + path);
  write_chrome_trace(os, events);
  PT_REQUIRE(os.good(), "chrome trace write failed: " + path);
}

std::size_t jsonl_to_chrome_trace(std::istream& is, std::ostream& os) {
  std::vector<Event> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::Value::parse(line);
    } catch (const Error& e) {
      throw Error("event log line " + std::to_string(lineno) + ": " +
                  e.what());
    }
    Event e;
    e.mono_seconds = doc.at("ts").as_number();
    e.wall_micros = static_cast<std::int64_t>(doc.at("wall_us").as_number());
    e.severity = severity_from_string(doc.at("level").as_string());
    e.name = doc.at("name").as_string();
    e.category = doc.at("cat").as_string();
    if (const auto* dur = doc.find("dur_s"))
      e.duration_seconds = dur->as_number();
    if (const auto* tid = doc.find("tid"))
      e.thread_id = static_cast<std::uint64_t>(tid->as_number());
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "ts" || key == "wall_us" || key == "level" ||
          key == "name" || key == "cat" || key == "dur_s" || key == "tid")
        continue;
      switch (value.type()) {
        case json::Value::Type::String:
          e.fields.emplace_back(key, value.as_string());
          break;
        case json::Value::Type::Number:
          e.fields.emplace_back(key, value.as_number());
          break;
        case json::Value::Type::Bool:
          e.fields.emplace_back(key, value.as_bool());
          break;
        default:
          e.fields.emplace_back(key, value.dump());
          break;
      }
    }
    events.push_back(std::move(e));
  }
  write_chrome_trace(os, events);
  return events.size();
}

}  // namespace portatune::obs
