#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace portatune::obs {

namespace {

/// Dense small ids for the trace viewer's thread lanes.
class TidMap {
 public:
  int lane(std::uint64_t thread_id) {
    const auto [it, inserted] =
        lanes_.emplace(thread_id, static_cast<int>(lanes_.size()));
    (void)inserted;
    return it->second;
  }

 private:
  std::map<std::uint64_t, int> lanes_;
};

void write_micros(std::ostream& os, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  os << buf;
}

void write_one(std::ostream& os, const Event& e, TidMap& tids, bool first) {
  if (!first) os << ",\n";
  const bool span = e.duration_seconds >= 0.0;
  os << "{\"name\":\"" << json::escape(e.name) << "\",\"cat\":\""
     << json::escape(e.category) << "\",\"ph\":\"" << (span ? 'X' : 'i')
     << "\",\"ts\":";
  write_micros(os, e.mono_seconds);
  if (span) {
    os << ",\"dur\":";
    write_micros(os, e.duration_seconds);
  } else {
    os << ",\"s\":\"t\"";
  }
  os << ",\"pid\":1,\"tid\":" << tids.lane(e.thread_id);
  os << ",\"args\":{\"level\":\"" << to_string(e.severity) << "\"";
  if (e.span_id != 0) os << ",\"span\":" << e.span_id;
  if (e.parent_span_id != 0) os << ",\"parent\":" << e.parent_span_id;
  for (const auto& f : e.fields) {
    os << ",\"" << json::escape(f.key) << "\":";
    if (f.quoted)
      os << "\"" << json::escape(f.value) << "\"";
    else
      os << (f.value.empty() ? "null" : f.value);
  }
  os << "}}";
}

/// One half of a flow arrow ("s" = start on the parent's lane, "f" =
/// finish binding to the child slice). The shared id is the child's
/// span id, so each cross-thread parent/child edge is its own flow.
void write_flow(std::ostream& os, char phase, std::uint64_t id, double ts,
                int lane) {
  os << ",\n{\"name\":\"span\",\"cat\":\"flow\",\"ph\":\"" << phase
     << "\",\"id\":" << id << ",\"ts\":";
  write_micros(os, ts);
  os << ",\"pid\":1,\"tid\":" << lane;
  if (phase == 'f') os << ",\"bp\":\"e\"";
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const Event> events) {
  // The viewer wants each lane's slices in timestamp order; the sink
  // emits in *completion* order, which interleaves threads arbitrarily.
  // Sort by (thread, start time, longest-first) so nesting slices
  // serialise parent-before-child even when they start the same instant.
  std::vector<const Event*> order;
  order.reserve(events.size());
  for (const Event& e : events) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [](const Event* a, const Event* b) {
                     if (a->thread_id != b->thread_id)
                       return a->thread_id < b->thread_id;
                     if (a->mono_seconds != b->mono_seconds)
                       return a->mono_seconds < b->mono_seconds;
                     return a->duration_seconds > b->duration_seconds;
                   });

  // Index span slices by id so cross-thread parent links (a window span
  // on the submitting thread, its evaluations on pool workers) can be
  // drawn as flow arrows; same-thread nesting already shows as slice
  // containment.
  struct SpanRef {
    const Event* event;
    int lane;
  };
  TidMap tids;
  std::map<std::uint64_t, SpanRef> spans;
  for (const Event* e : order) {
    const int lane = tids.lane(e->thread_id);
    if (e->span_id != 0 && e->duration_seconds >= 0.0)
      spans.emplace(e->span_id, SpanRef{e, lane});
  }

  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event* e : order) {
    write_one(os, *e, tids, first);
    first = false;
  }
  for (const auto& [id, child] : spans) {
    if (child.event->parent_span_id == 0) continue;
    const auto it = spans.find(child.event->parent_span_id);
    if (it == spans.end() || it->second.lane == child.lane) continue;
    if (first) continue;  // defensive: flows need at least one slice
    // Anchor the arrow at the child's start: inside the parent slice on
    // the parent's lane, at the child slice's opening edge on its own.
    write_flow(os, 's', id, child.event->mono_seconds, it->second.lane);
    write_flow(os, 'f', id, child.event->mono_seconds, child.lane);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(const std::string& path,
                        std::span<const Event> events) {
  std::ofstream os(path);
  PT_REQUIRE(os.good(), "cannot open chrome trace for writing: " + path);
  write_chrome_trace(os, events);
  PT_REQUIRE(os.good(), "chrome trace write failed: " + path);
}

namespace {

/// Parse one JSONL line into an Event; throws portatune::Error on any
/// malformation (bad JSON, missing required key, bad severity).
Event parse_event_line(const std::string& line, std::size_t lineno) {
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const Error& e) {
    throw Error("event log line " + std::to_string(lineno) + ": " +
                e.what());
  }
  try {
    Event e;
    e.mono_seconds = doc.at("ts").as_number();
    e.wall_micros = static_cast<std::int64_t>(doc.at("wall_us").as_number());
    e.severity = severity_from_string(doc.at("level").as_string());
    e.name = doc.at("name").as_string();
    e.category = doc.at("cat").as_string();
    if (const auto* dur = doc.find("dur_s"))
      e.duration_seconds = dur->as_number();
    if (const auto* tid = doc.find("tid"))
      e.thread_id = static_cast<std::uint64_t>(tid->as_number());
    if (const auto* span = doc.find("span"))
      e.span_id = static_cast<std::uint64_t>(span->as_number());
    if (const auto* parent = doc.find("parent"))
      e.parent_span_id = static_cast<std::uint64_t>(parent->as_number());
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "ts" || key == "wall_us" || key == "level" ||
          key == "name" || key == "cat" || key == "dur_s" || key == "tid" ||
          key == "span" || key == "parent")
        continue;
      switch (value.type()) {
        case json::Value::Type::String:
          e.fields.emplace_back(key, value.as_string());
          break;
        case json::Value::Type::Number:
          e.fields.emplace_back(key, value.as_number());
          break;
        case json::Value::Type::Bool:
          e.fields.emplace_back(key, value.as_bool());
          break;
        default:
          e.fields.emplace_back(key, value.dump());
          break;
      }
    }
    return e;
  } catch (const Error& e) {
    throw Error("event log line " + std::to_string(lineno) + ": " +
                e.what());
  }
}

}  // namespace

std::vector<Event> read_event_log(std::istream& is, LogReadStats* stats) {
  std::vector<Event> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (stats != nullptr) ++stats->lines;
    try {
      events.push_back(parse_event_line(line, lineno));
    } catch (const Error& e) {
      if (stats == nullptr) throw;  // strict mode
      ++stats->skipped;
      if (stats->first_error.empty()) stats->first_error = e.what();
    }
  }
  return events;
}

std::vector<Event> read_event_log(const std::string& path,
                                  LogReadStats* stats) {
  std::ifstream is(path);
  PT_REQUIRE(is.good(), "cannot open event log: " + path);
  return read_event_log(is, stats);
}

std::size_t jsonl_to_chrome_trace(std::istream& is, std::ostream& os) {
  const std::vector<Event> events = read_event_log(is);
  write_chrome_trace(os, events);
  return events.size();
}

}  // namespace portatune::obs
