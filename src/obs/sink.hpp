// Event sinks: where structured events go.
//
// The tuner's instrumentation is always compiled in but dormant: emit()
// is a no-op (one relaxed atomic load) until a sink is installed with
// set_default_sink() or ScopedSinkRedirect. Sinks are lock-protected and
// safe to share across the thread pool.
//
//   JsonlSink   — one JSON object per line to a file/stream; flushes on
//                 Warn/Error events and on destruction, so aborted runs
//                 still leave a readable log.
//   MemorySink  — retains events in memory (Chrome-trace export, tests).
//   TeeSink     — fans one event out to several sinks.
#pragma once

#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace portatune::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Thread-safe: serialises writers internally.
  void log(const Event& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    write(event);
    if (event.severity >= Severity::Warn) flush_locked();
  }

  void flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_locked();
  }

 protected:
  virtual void write(const Event& event) = 0;
  virtual void flush_locked() {}

 private:
  std::mutex mutex_;
};

/// JSON-lines sink. The stream constructor does not own the stream; the
/// path constructor owns the file and flushes it on destruction.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(&os) {}
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  std::size_t events_written() const noexcept { return count_.load(); }

 protected:
  void write(const Event& event) override;
  void flush_locked() override { os_->flush(); }

 private:
  std::ofstream owned_;
  std::ostream* os_;
  std::atomic<std::size_t> count_{0};
};

/// Retains every event in memory; used for Chrome-trace export and tests.
class MemorySink final : public EventSink {
 public:
  /// Snapshot of all events logged so far.
  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(events_mutex_);
    return events_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(events_mutex_);
    return events_.size();
  }

 protected:
  void write(const Event& event) override {
    std::lock_guard<std::mutex> lock(events_mutex_);
    events_.push_back(event);
  }

 private:
  mutable std::mutex events_mutex_;
  std::vector<Event> events_;
};

/// Forwards only events at or above a severity threshold (inner sink not
/// owned). This is how a file sink stays threshold-filtered while a
/// sibling in the same Tee — the flight recorder — sees every severity:
/// the global log level drops to Debug and each conventional sink gets
/// its own FilterSink at the level the user actually asked for.
class FilterSink final : public EventSink {
 public:
  FilterSink(EventSink* inner, Severity threshold)
      : inner_(inner), threshold_(threshold) {}

 protected:
  void write(const Event& event) override {
    if (inner_ != nullptr && event.severity >= threshold_)
      inner_->log(event);
  }
  void flush_locked() override {
    if (inner_ != nullptr) inner_->flush();
  }

 private:
  EventSink* inner_;
  Severity threshold_;
};

/// Forwards each event to every child sink (none owned).
class TeeSink final : public EventSink {
 public:
  explicit TeeSink(std::vector<EventSink*> sinks)
      : sinks_(std::move(sinks)) {}

 protected:
  void write(const Event& event) override {
    for (EventSink* s : sinks_)
      if (s != nullptr) s->log(event);
  }
  void flush_locked() override {
    for (EventSink* s : sinks_)
      if (s != nullptr) s->flush();
  }

 private:
  std::vector<EventSink*> sinks_;
};

namespace detail {
inline std::atomic<EventSink*> g_sink{nullptr};
inline std::atomic<int> g_level{static_cast<int>(Severity::Info)};
}  // namespace detail

/// The currently installed default sink (nullptr = observability off).
inline EventSink* default_sink() noexcept {
  return detail::g_sink.load(std::memory_order_acquire);
}
/// Install a sink (non-owning; pass nullptr to disable). The sink must
/// outlive its installation.
inline void set_default_sink(EventSink* sink) noexcept {
  detail::g_sink.store(sink, std::memory_order_release);
}

inline Severity log_level() noexcept {
  return static_cast<Severity>(
      detail::g_level.load(std::memory_order_relaxed));
}
inline void set_log_level(Severity level) noexcept {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

/// Fast dormant-path check: is anything listening at this severity?
/// Callers guard event *construction* with this so a disabled build pays
/// one atomic load and no allocation.
inline bool enabled(Severity severity) noexcept {
  return detail::g_sink.load(std::memory_order_relaxed) != nullptr &&
         severity >= log_level();
}

/// Log to the default sink if enabled; otherwise drop the event.
inline void emit(const Event& event) {
  EventSink* sink = default_sink();
  if (sink != nullptr && event.severity >= log_level()) sink->log(event);
}

/// Flush the default sink if one is installed (abort paths call this so
/// truncated runs still yield a readable log).
inline void flush_default_sink() {
  if (EventSink* sink = default_sink()) sink->flush();
}

/// Scoped sink (and optionally level) redirection for tests: installs a
/// sink on construction, restores the previous sink and level on
/// destruction.
class ScopedSinkRedirect {
 public:
  explicit ScopedSinkRedirect(EventSink* sink)
      : previous_(default_sink()), previous_level_(log_level()) {
    set_default_sink(sink);
  }
  ScopedSinkRedirect(EventSink* sink, Severity level)
      : ScopedSinkRedirect(sink) {
    set_log_level(level);
  }
  ~ScopedSinkRedirect() {
    set_default_sink(previous_);
    set_log_level(previous_level_);
  }
  ScopedSinkRedirect(const ScopedSinkRedirect&) = delete;
  ScopedSinkRedirect& operator=(const ScopedSinkRedirect&) = delete;

 private:
  EventSink* previous_;
  Severity previous_level_;
};

}  // namespace portatune::obs
