// Live metrics time-series: the sampler half of run telemetry.
//
// A MetricsSampler owns one background thread that periodically copies
// MetricsRegistry::current() into an append-only JSONL file — one row
// per tick:
//
//   {"seq":3,"pid":1234,"t_wall":1754630000.2,"t_mono":3.004,
//    "dt":1.001,"counters":{...},"rates":{...},"gauges":{...},
//    "histograms":{"eval.seconds":{"count":40,"mean":...,"p50":...}}}
//
// `rates` are counter deltas divided by the tick interval (evals/sec,
// prune rate, cache traffic); histogram rows carry the interpolated
// p50/p95/p99 so queue-wait and latency distributions are watchable as
// they move. Appending (rather than atomic whole-file rewrites) is
// deliberate: the series grows unbounded, a SIGKILL can only tear the
// final line, and every reader of our JSONL formats is lenient.
//
// Dormant-path guarantee: a run that doesn't construct a sampler pays
// nothing — no thread, no clock reads, no file. The hot paths the
// sampler *observes* are the same relaxed-atomic instruments they
// always were; sampling is strictly reader-side.
//
// The on_tick hook runs after each sample on the sampler thread. The
// journaled-run telemetry uses it to piggyback the flight-recorder's
// periodic dump on the same thread, so a SIGKILL'd run leaves both a
// time-series and a black box at most one period old.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace portatune::obs {

class MetricsSampler {
 public:
  struct Options {
    /// Append target, conventionally `<run-dir>/metrics_timeseries.jsonl`.
    std::string path;
    /// Tick cadence; clamped to >= 10ms.
    double period_seconds = 1.0;
    /// Registry to sample (nullptr = the registry current at each tick).
    MetricsRegistry* registry = nullptr;
    /// Invoked after each row is appended, on the sampler thread.
    std::function<void()> on_tick;
  };

  /// Opens the file (appending; the parent directory must exist), writes
  /// an immediate first row to anchor the series, and starts the thread.
  /// Throws portatune::Error when the file cannot be opened.
  explicit MetricsSampler(Options options);
  /// Stops the thread and writes one final row, so even a sub-period run
  /// ends with a complete sample.
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Take one sample synchronously on the calling thread (tests; final
  /// flush). Thread-safe against the background tick.
  void sample_now();

  std::uint64_t samples_written() const noexcept;

  /// Render one time-series row (without trailing newline). Exposed for
  /// tests; `seq`/`dt`/rates bookkeeping is the caller's.
  static std::string render_row(const MetricsSnapshot& snapshot,
                                std::uint64_t seq, double t_wall,
                                double t_mono, double dt,
                                const std::map<std::string, double>& rates);

 private:
  void run();
  void sample_locked();

  Options options_;
  std::ofstream out_;
  mutable std::mutex sample_mutex_;  ///< serialises sample_locked callers
  std::uint64_t seq_ = 0;
  double last_mono_ = -1.0;
  std::map<std::string, std::uint64_t> last_counters_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace portatune::obs
