#include "obs/thread_pool_metrics.hpp"

namespace portatune::obs {

ThreadPoolMetrics::ThreadPoolMetrics(MetricsRegistry* registry) {
  MetricsRegistry& r =
      registry != nullptr ? *registry : MetricsRegistry::current();
  submitted_ = &r.counter("pool.tasks_submitted");
  completed_ = &r.counter("pool.tasks_completed");
  queue_depth_ = &r.gauge("pool.queue_depth");
  workers_busy_ = &r.gauge("pool.workers_busy");
  queue_wait_ = &r.histogram("pool.queue_wait_seconds");
  execute_ = &r.histogram("pool.execute_seconds");
}

}  // namespace portatune::obs
