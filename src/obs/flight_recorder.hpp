// Crash flight recorder: the run's black box.
//
// A FlightRecorder is an EventSink holding a fixed-capacity ring of the
// most recent events — at *every* severity, even when the file sink the
// user asked for is threshold-filtered (the CLI drops the global log
// level to Debug and wraps the conventional sinks in FilterSinks, so the
// recorder is the one consumer that sees everything). dump() serialises
// the ring through atomic_write_file to `flight_recorder.jsonl`, one
// event per line behind a single metadata header line, so every abnormal
// exit ships the final moments of the run:
//
//   * SIGINT/SIGTERM            via a support shutdown hook
//   * a watchdog-detected hang  (eval.hang_detected, tuner/watchdog.cpp)
//   * a search abort            (search.abort, tuner/trace.cpp)
//   * a failed PT_REQUIRE       via the support error hook
//   * periodically              (the MetricsSampler tick), so even a
//                               SIGKILL — which runs no hook at all —
//                               leaves a dump at most one period old
//
// Dormant-path guarantee: nothing here touches the emit() fast path.
// With no recorder installed the event hot path is byte-for-byte the
// code it was before this file existed; the only cost of an *installed*
// recorder is one ring slot copy per event under the sink mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "support/error.hpp"

namespace portatune::obs {

class FlightRecorder final : public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Arm dump(): without a path every dump request is a no-op (tests use
  /// snapshot() instead).
  void set_dump_path(std::string path);
  const std::string& dump_path() const noexcept { return dump_path_; }

  /// The retained events, oldest first.
  std::vector<Event> snapshot() const;
  /// Total events ever offered (>= capacity once the ring wrapped).
  std::uint64_t events_seen() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Write the ring to dump_path(): a `flight_recorder` metadata header
  /// line (reason, counts, timestamps) followed by one event JSON object
  /// per line, oldest first. The ring is snapshotted first and the
  /// default sink flushed before the write, so every event in the dump
  /// has already been offered to the log — the dump's tail lines up with
  /// the log's tail. Never throws (an unwritable path is reported once
  /// on stderr and otherwise ignored: the black box must not take the
  /// plane down), and re-entrant triggers (a PT_REQUIRE raised *by* the
  /// dump) are suppressed.
  void dump(const char* reason) noexcept;

  /// Number of successful dump() writes.
  std::uint64_t dumps_written() const noexcept;

 protected:
  void write(const Event& event) override;

 private:
  const std::size_t capacity_;
  mutable std::mutex ring_mutex_;
  std::vector<Event> ring_;     ///< ring_[seen_ % capacity_] is next slot
  std::uint64_t seen_ = 0;
  std::string dump_path_;
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<bool> warned_{false};
};

/// The process-wide recorder the abnormal-exit triggers dump (nullptr =
/// none installed). Distinct from the default *sink* chain: triggers
/// need to find the recorder without knowing how the sinks are wired.
FlightRecorder* global_flight_recorder() noexcept;
void set_global_flight_recorder(FlightRecorder* recorder) noexcept;

/// Dump the installed recorder, if any (the one call every trigger site
/// makes; safe from any thread, never throws).
void dump_flight_recorder(const char* reason) noexcept;

/// RAII installation of the full trigger set: global recorder pointer,
/// the PT_REQUIRE error hook, and the SIGINT/SIGTERM shutdown hook.
/// Restores the previous recorder and error hook on destruction. The
/// recorder itself is not owned and must outlive the scope.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder& recorder);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
  ErrorHook previous_error_hook_;
};

}  // namespace portatune::obs
