// Minimal JSON document model: parse and serialise.
//
// Just enough JSON for the observability layer's own formats — JSONL
// event logs, metrics snapshots, and Chrome trace files — so tests can
// validate emitted files with a real parser and tools can re-read logs
// without external dependencies. Not a general-purpose library: numbers
// are doubles, no comments, UTF-8 passes through untouched (only \uXXXX
// below 0x80 is decoded).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace portatune::obs::json {

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Member lookup that throws portatune::Error when absent.
  const Value& at(std::string_view key) const;

  /// Parse a complete JSON document (throws portatune::Error on any
  /// syntax error or trailing garbage).
  static Value parse(std::string_view text);

  /// Serialise (compact, no whitespace).
  std::string dump() const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> m);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
std::string escape(std::string_view s);

}  // namespace portatune::obs::json
