// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Metrics answer "how much / how often" questions the event log is too
// verbose for: evaluation latency distributions, prune rates, cache miss
// rates, model-fit cost. Instruments are created once (name lookup under
// a mutex) and then updated lock-free with relaxed atomics, so hot paths
// hold a pointer and pay one atomic RMW per update.
//
// MetricsRegistry::current() is the process-wide registry; tests swap in
// a private registry with ScopedMetricsRedirect.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace portatune::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram: observations are counted into
/// boundaries.size() + 1 buckets (bucket i holds v <= boundaries[i], the
/// last bucket is the overflow), plus running count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void observe(double v) noexcept;

  const std::vector<double>& boundaries() const noexcept {
    return boundaries_;
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const auto n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

  /// Default latency boundaries: ~1us .. ~100s, log-spaced.
  static std::vector<double> default_seconds_boundaries();

 private:
  std::vector<double> boundaries_;  // ascending
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
  /// Interpolated percentiles (see percentile()); 0 when count == 0.
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::vector<double> boundaries;
  std::vector<std::uint64_t> buckets;

  /// The q-th percentile (q in [0,1]), linearly interpolated inside the
  /// fixed buckets. The first bucket interpolates up from the observed
  /// min, the overflow bucket up to the observed max, so the estimate is
  /// always inside [min, max] — exact at q=0/q=1, bucket-resolution
  /// accurate elsewhere.
  double percentile(double q) const noexcept;
};

/// A point-in-time copy of every instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// The same document as a json::Value, but compact: histograms carry
  /// count/sum/mean/min/max and the interpolated p50/p95/p99, without
  /// the bucket detail. This is what travels over the service wire (the
  /// `stats` protocol op) where reply lines should stay small.
  json::Value to_value() const;
  /// Human-readable aligned table.
  void write_table(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Boundaries are fixed on first creation; later callers get the
  /// existing instrument regardless of the boundaries they pass.
  Histogram& histogram(const std::string& name,
                       std::vector<double> boundaries = {});

  MetricsSnapshot snapshot() const;
  /// Zero every instrument (the instruments themselves survive, so held
  /// pointers stay valid).
  void reset();

  /// The process-wide registry instrumentation writes to by default.
  static MetricsRegistry& global();
  /// The active registry: global() unless a ScopedMetricsRedirect is live.
  static MetricsRegistry& current();

 private:
  friend class ScopedMetricsRedirect;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Point MetricsRegistry::current() at a private registry for the scope's
/// lifetime (tests; isolated experiment accounting).
class ScopedMetricsRedirect {
 public:
  explicit ScopedMetricsRedirect(MetricsRegistry& registry);
  ~ScopedMetricsRedirect();
  ScopedMetricsRedirect(const ScopedMetricsRedirect&) = delete;
  ScopedMetricsRedirect& operator=(const ScopedMetricsRedirect&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace portatune::obs
