// HPL mini-app: dense LU solve benchmark (paper Sec. IV-C).
//
// Two halves:
//   * a real solver — blocked, partially pivoted LU factorization and
//     triangular solves with a run-time block size — used by the native
//     evaluation path, the examples, and the correctness tests;
//   * the 15-parameter HPL tuning space and a simulated cross-machine
//     evaluator. HPL's algorithmic parameters (broadcast shape, process
//     mapping, panel factorization variant, ...) interact with a machine
//     in ways no loop-nest model captures; following DESIGN.md they are
//     modeled as machine-keyed idiosyncratic factors on top of a
//     mechanistic block-size/cache term. This reproduces the paper's
//     observation that HPL run times correlate weakly across machines.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::apps {

/// ---------------------------------------------------------------------
/// Real solver half.
/// ---------------------------------------------------------------------

/// Dense row-major matrix holder for the solver.
struct DenseMatrix {
  std::int64_t n = 0;
  std::vector<double> a;  // n x n, row-major

  double& at(std::int64_t r, std::int64_t c) { return a[r * n + c]; }
  double at(std::int64_t r, std::int64_t c) const { return a[r * n + c]; }
};

/// In-place blocked LU factorization with partial pivoting.
/// Returns the pivot permutation; throws portatune::Error on singularity.
std::vector<std::int64_t> lu_factor(DenseMatrix& m, std::int64_t block);

/// Solve A x = b given the factorization produced by lu_factor.
std::vector<double> lu_solve(const DenseMatrix& lu,
                             const std::vector<std::int64_t>& pivots,
                             std::vector<double> b);

/// Generate the standard HPL random system (seeded, diagonally dominated
/// enough to factor reliably).
DenseMatrix random_system(std::int64_t n, std::uint64_t seed);

/// ||Ax - b||_inf / (||A||_inf ||x||_inf n eps): the HPL residual check.
double hpl_residual(const DenseMatrix& a, const std::vector<double>& x,
                    const std::vector<double>& b);

/// ---------------------------------------------------------------------
/// Tuning half.
/// ---------------------------------------------------------------------

/// The 15-parameter HPL space (block size NB, process grid, process
/// mapping, broadcast algorithm, panel/recursive factorization variants,
/// lookahead depth, recursion stopping, swap algorithm, storage forms,
/// equilibration, alignment).
tuner::ParamSpace hpl_param_space();

/// Simulated HPL evaluator on a Table II machine.
class SimulatedHplEvaluator final : public tuner::Evaluator {
 public:
  explicit SimulatedHplEvaluator(sim::MachineDescriptor machine,
                                 std::int64_t n = 16384,
                                 double noise_sigma = 0.05);

  const tuner::ParamSpace& space() const override { return space_; }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  /// Thread-safe: evaluate() is a pure function of (machine, config) —
  /// noise is hashed, never drawn from mutable generator state.
  tuner::EvalCapabilities capabilities() const override {
    return {.thread_safe = true, .preferred_batch = 1};
  }
  std::string problem_name() const override { return "HPL"; }
  std::string machine_name() const override { return machine_.name; }

 private:
  tuner::ParamSpace space_;
  sim::MachineDescriptor machine_;
  std::int64_t n_;
  double noise_sigma_;
};

}  // namespace portatune::apps
