#include "apps/registry.hpp"

#include "apps/hpl.hpp"
#include "apps/raytracer.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "support/error.hpp"

namespace portatune::apps {

const std::vector<std::string>& all_problem_names() {
  static const std::vector<std::string> names = {"MM",  "ATAX", "LU",
                                                 "COR", "HPL",  "RT"};
  return names;
}

tuner::EvaluatorPtr make_simulated_evaluator(const std::string& problem,
                                             const std::string& machine,
                                             sim::Compiler compiler,
                                             int threads) {
  const sim::MachineDescriptor m = sim::machine_by_name(machine, compiler);
  if (problem == "MM" || problem == "ATAX" || problem == "COR" ||
      problem == "LU") {
    return std::make_unique<kernels::SimulatedKernelEvaluator>(
        kernels::spapt_by_name(problem), m, threads);
  }
  if (problem == "HPL") return std::make_unique<SimulatedHplEvaluator>(m);
  if (problem == "RT")
    return std::make_unique<SimulatedRaytracerEvaluator>(m);
  throw Error("unknown problem: " + problem);
}

}  // namespace portatune::apps
