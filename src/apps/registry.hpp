// Problem registry: one factory for every (problem, machine) pair used in
// the paper's evaluation — the four SPAPT kernels plus the two mini-apps
// on any Table II machine. Benches and examples go through this.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::apps {

/// Problems of the paper's evaluation, in Table IV order.
const std::vector<std::string>& all_problem_names();

/// Create a simulated evaluator for `problem` ("MM", "ATAX", "COR", "LU",
/// "HPL", "RT") on `machine` (Table II name). Throws on unknown names.
tuner::EvaluatorPtr make_simulated_evaluator(
    const std::string& problem, const std::string& machine,
    sim::Compiler compiler = sim::Compiler::Gnu, int threads = 1);

}  // namespace portatune::apps
