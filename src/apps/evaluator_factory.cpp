#include "apps/evaluator_factory.hpp"

#include "apps/registry.hpp"

namespace portatune::apps {

namespace {

bool injects_faults(const tuner::FaultProfile& p) {
  return p.transient_rate > 0.0 || p.deterministic_rate > 0.0 ||
         p.hang_rate > 0.0 || p.delay_rate > 0.0 || p.spike_rate > 0.0;
}

}  // namespace

EvaluatorStack::EvaluatorStack(const EvaluatorStackOptions& opt)
    : guard_(opt.guard),
      backend_(make_simulated_evaluator(opt.problem, opt.machine,
                                        opt.compiler, opt.kernel_threads)) {
  tuner::Evaluator* top = backend_.get();
  if (injects_faults(opt.faults)) {
    faults_ = std::make_unique<tuner::FaultInjectingEvaluator>(*top,
                                                               opt.faults);
    top = faults_.get();
  }
  // Inside the resilient layer on purpose: the observer sees every raw
  // attempt (including injected faults), one event per attempt.
  if (opt.observe) {
    observed_ =
        std::make_unique<obs::ObservedEvaluator>(*top, opt.observe_label);
    top = observed_.get();
  }
  if (opt.resilient) {
    resilient_ = std::make_unique<tuner::ResilientEvaluator>(*top, opt.retry);
    top = resilient_.get();
  }
  if (opt.eval_threads != 1) {
    tuner::ParallelOptions popt;
    popt.threads = opt.eval_threads;
    popt.batch_width = opt.batch_width;
    popt.cancel = opt.cancel;
    popt.eval_deadline_seconds = opt.eval_deadline_seconds;
    parallel_ = std::make_unique<tuner::ParallelEvaluator>(*top, popt);
    top = parallel_.get();
  }
  top_ = top;
}

std::unique_ptr<EvaluatorStack> make_evaluator_stack(
    const EvaluatorStackOptions& opt) {
  return std::make_unique<EvaluatorStack>(opt);
}

}  // namespace portatune::apps
