#include "apps/hpl.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "sim/noise.hpp"

namespace portatune::apps {

// ---------------------------------------------------------------------
// Real solver.
// ---------------------------------------------------------------------

std::vector<std::int64_t> lu_factor(DenseMatrix& m, std::int64_t block) {
  PT_REQUIRE(m.n > 0, "empty matrix");
  PT_REQUIRE(block >= 1, "block size must be positive");
  const std::int64_t n = m.n;
  std::vector<std::int64_t> piv(n);
  for (std::int64_t i = 0; i < n; ++i) piv[i] = i;

  for (std::int64_t k0 = 0; k0 < n; k0 += block) {
    const std::int64_t k1 = std::min(n, k0 + block);

    // Panel factorization (unblocked, with partial pivoting).
    for (std::int64_t k = k0; k < k1; ++k) {
      std::int64_t p = k;
      double best = std::abs(m.at(k, k));
      for (std::int64_t r = k + 1; r < n; ++r) {
        const double v = std::abs(m.at(r, k));
        if (v > best) {
          best = v;
          p = r;
        }
      }
      PT_REQUIRE(best > 0.0, "singular matrix in lu_factor");
      if (p != k) {
        for (std::int64_t c = 0; c < n; ++c)
          std::swap(m.a[k * n + c], m.a[p * n + c]);
        std::swap(piv[k], piv[p]);
      }
      const double pivot = m.at(k, k);
      for (std::int64_t r = k + 1; r < n; ++r) {
        const double l = m.at(r, k) / pivot;
        m.at(r, k) = l;
        // Update only within the panel; the trailing block update below
        // handles columns >= k1.
        for (std::int64_t c = k + 1; c < k1; ++c)
          m.at(r, c) -= l * m.at(k, c);
      }
    }

    if (k1 == n) break;

    // U block row: solve L11 * U12 = A12.
    for (std::int64_t k = k0; k < k1; ++k)
      for (std::int64_t r = k + 1; r < k1; ++r) {
        const double l = m.at(r, k);
        for (std::int64_t c = k1; c < n; ++c)
          m.at(r, c) -= l * m.at(k, c);
      }

    // Trailing update: A22 -= L21 * U12 (blocked GEMM, ikj order).
    for (std::int64_t r = k1; r < n; ++r) {
      for (std::int64_t k = k0; k < k1; ++k) {
        const double l = m.at(r, k);
        if (l == 0.0) continue;
        const double* urow = &m.a[k * n + k1];
        double* arow = &m.a[r * n + k1];
        for (std::int64_t c = 0; c < n - k1; ++c) arow[c] -= l * urow[c];
      }
    }
  }
  return piv;
}

std::vector<double> lu_solve(const DenseMatrix& lu,
                             const std::vector<std::int64_t>& pivots,
                             std::vector<double> b) {
  const std::int64_t n = lu.n;
  PT_REQUIRE(static_cast<std::int64_t>(b.size()) == n, "rhs size mismatch");
  PT_REQUIRE(static_cast<std::int64_t>(pivots.size()) == n,
             "pivot size mismatch");
  // Apply the permutation.
  std::vector<double> x(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) x[i] = b[pivots[i]];
  // Forward solve L y = Pb (unit diagonal).
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < i; ++j) x[i] -= lu.at(i, j) * x[j];
  // Back solve U x = y.
  for (std::int64_t i = n; i-- > 0;) {
    for (std::int64_t j = i + 1; j < n; ++j) x[i] -= lu.at(i, j) * x[j];
    x[i] /= lu.at(i, i);
  }
  return x;
}

DenseMatrix random_system(std::int64_t n, std::uint64_t seed) {
  DenseMatrix m;
  m.n = n;
  m.a.resize(static_cast<std::size_t>(n) * n);
  Rng rng(seed);
  for (auto& v : m.a) v = rng.uniform(-0.5, 0.5);
  // Mild diagonal boost: keeps random systems comfortably nonsingular
  // without changing the memory/compute profile.
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) += 2.0;
  return m;
}

double hpl_residual(const DenseMatrix& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  const std::int64_t n = a.n;
  double r_inf = 0.0, a_inf = 0.0, x_inf = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double dot = 0.0, row = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      dot += a.at(i, j) * x[j];
      row += std::abs(a.at(i, j));
    }
    r_inf = std::max(r_inf, std::abs(dot - b[i]));
    a_inf = std::max(a_inf, row);
    x_inf = std::max(x_inf, std::abs(x[i]));
  }
  const double eps = 2.220446049250313e-16;
  return r_inf / (a_inf * x_inf * static_cast<double>(n) * eps);
}

// ---------------------------------------------------------------------
// Tuning space and simulated evaluator.
// ---------------------------------------------------------------------

tuner::ParamSpace hpl_param_space() {
  using tuner::range_values;
  tuner::ParamSpace s;
  s.add("NB", {32, 48, 64, 96, 128, 160, 192, 224, 256});
  s.add("PMAP", {0, 1});              // row- / column-major process mapping
  s.add("GRID", {0, 1, 2, 3});        // 1x8, 2x4, 4x2, 8x1
  s.add("DEPTH", {0, 1, 2});          // lookahead depth
  s.add("BCAST", {0, 1, 2, 3, 4, 5}); // 1rg,1rM,2rg,2rM,Lng,LnM
  s.add("PFACT", {0, 1, 2});          // left / Crout / right panel fact.
  s.add("RFACT", {0, 1, 2});          // recursive variant
  s.add("NBMIN", {1, 2, 4, 8});       // recursion stop
  s.add("NDIV", {2, 3, 4});           // recursion fan-out
  s.add("SWAP", {0, 1, 2});           // bin-exch / spread-roll / mix
  s.add("SWAP_THRESH", {16, 32, 64, 128});
  s.add("L1_FORM", {0, 1});           // transposed / no-transposed
  s.add("U_FORM", {0, 1});
  s.add("EQUIL", {0, 1});
  s.add("ALIGN", {4, 8, 16});
  PT_ASSERT(s.num_params() == 15);
  return s;
}

SimulatedHplEvaluator::SimulatedHplEvaluator(sim::MachineDescriptor machine,
                                             std::int64_t n,
                                             double noise_sigma)
    : space_(hpl_param_space()),
      machine_(std::move(machine)),
      n_(n),
      noise_sigma_(noise_sigma) {}

tuner::EvalResult SimulatedHplEvaluator::evaluate(
    const tuner::ParamConfig& config) {
  space_.validate(config);
  const auto v = space_.features(config);
  const double nb = v[0];

  // Mechanistic core: trailing-update GEMM efficiency peaks when a panel
  // block (3 * NB^2 doubles) sits in L2 and NB amortizes the panel's
  // O(n NB^2) scalar work without starving the update.
  const double flops = 2.0 / 3.0 * std::pow(static_cast<double>(n_), 3);
  const double l2 = static_cast<double>(machine_.caches.size() > 1
                                            ? machine_.caches[1].size_bytes
                                            : machine_.caches[0].size_bytes);
  const double nb_opt = std::sqrt(l2 * machine_.cache_utilization / 3.0 / 8.0);
  const double mismatch = std::log2(nb / nb_opt);
  const double gemm_eff = 0.85 * std::exp(-0.08 * mismatch * mismatch);
  const double peak = machine_.peak_gflops() * 1e9;
  double seconds = flops / (peak * gemm_eff);

  // Panel factorization overhead grows as NB shrinks relative to n.
  seconds *= 1.0 + 0.02 * (256.0 / nb);

  // Algorithmic parameters: each contributes a machine-keyed idiosyncratic
  // factor. The *shape* (which value is best) differs per machine, which
  // is exactly why the paper's HPL correlation plots are diffuse.
  static constexpr double kAmp[] = {0.0,  0.12, 0.18, 0.15, 0.24,
                                    0.12, 0.12, 0.09, 0.09, 0.18,
                                    0.09, 0.06, 0.06, 0.09, 0.06};
  const std::uint64_t machine_key = hash_bytes(machine_.name);
  for (std::size_t p = 1; p < space_.num_params(); ++p) {
    const std::uint64_t key = hash_combine(
        hash_combine(machine_key, p),
        static_cast<std::uint64_t>(config[p]));
    const double u = hash_to_unit(mix64(key));  // [0,1)
    seconds *= 1.0 + kAmp[p] * (u - 0.25) * 2.0;
  }

  // A small *portable* component on the algorithmic parameters (some
  // choices are simply better everywhere), so correlation is weak but not
  // zero — matching the paper's HPL panels.
  for (std::size_t p = 1; p < space_.num_params(); ++p) {
    const std::uint64_t key =
        hash_combine(hash_combine(hash_bytes("hpl-shared"), p),
                     static_cast<std::uint64_t>(config[p]));
    seconds *= 1.0 + 0.015 * (hash_to_unit(mix64(key)) - 0.5) * 2.0;
  }

  const std::uint64_t noise = sim::noise_key(
      machine_.name, "HPL", space_.config_hash(config), 0);
  seconds *= sim::noise_factor(noise, noise_sigma_);
  return {seconds, true, {}};
}

}  // namespace portatune::apps
