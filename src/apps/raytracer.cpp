#include "apps/raytracer.hpp"

#include <cmath>
#include <optional>

#include "sim/noise.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune::apps {

// ---------------------------------------------------------------------
// Renderer.
// ---------------------------------------------------------------------

double Vec3::norm() const { return std::sqrt(dot(*this)); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{};
}

std::vector<unsigned char> Image::to_ppm() const {
  std::vector<unsigned char> out;
  std::string header = "P6\n" + std::to_string(width) + " " +
                       std::to_string(height) + "\n255\n";
  out.insert(out.end(), header.begin(), header.end());
  const auto clamp255 = [](double v) {
    return static_cast<unsigned char>(
        std::min(255.0, std::max(0.0, v * 255.0)));
  };
  for (const auto& p : pixels) {
    out.push_back(clamp255(p.x));
    out.push_back(clamp255(p.y));
    out.push_back(clamp255(p.z));
  }
  return out;
}

Scene demo_scene() {
  Scene s;
  s.spheres = {
      {{0.0, 0.0, -6.0}, 1.5, {0.9, 0.2, 0.2}, 0.4},
      {{2.2, -0.5, -5.0}, 1.0, {0.2, 0.8, 0.3}, 0.2},
      {{-2.4, 0.3, -7.5}, 1.8, {0.25, 0.4, 0.95}, 0.6},
      {{0.8, 1.6, -4.0}, 0.6, {0.95, 0.9, 0.2}, 0.1},
  };
  return s;
}

namespace {

struct Hit {
  double t = 0.0;
  Vec3 point, normal, color;
  double reflectivity = 0.0;
};

std::optional<Hit> intersect_sphere(const Sphere& s, Vec3 origin, Vec3 dir) {
  const Vec3 oc = origin - s.center;
  const double b = 2.0 * oc.dot(dir);
  const double c = oc.dot(oc) - s.radius * s.radius;
  const double disc = b * b - 4.0 * c;
  if (disc < 0.0) return std::nullopt;
  const double sq = std::sqrt(disc);
  double t = (-b - sq) / 2.0;
  if (t < 1e-4) t = (-b + sq) / 2.0;
  if (t < 1e-4) return std::nullopt;
  Hit h;
  h.t = t;
  h.point = origin + dir * t;
  h.normal = (h.point - s.center).normalized();
  h.color = s.color;
  h.reflectivity = s.reflectivity;
  return h;
}

std::optional<Hit> intersect_floor(const Scene& scene, Vec3 origin,
                                   Vec3 dir) {
  if (dir.y >= -1e-9) return std::nullopt;
  const double t = (scene.floor_y - origin.y) / dir.y;
  if (t < 1e-4) return std::nullopt;
  Hit h;
  h.t = t;
  h.point = origin + dir * t;
  h.normal = {0, 1, 0};
  const int checker = (static_cast<int>(std::floor(h.point.x)) +
                       static_cast<int>(std::floor(h.point.z))) & 1;
  h.color = checker ? Vec3{0.85, 0.85, 0.85} : Vec3{0.2, 0.2, 0.2};
  h.reflectivity = 0.15;
  return h;
}

std::optional<Hit> closest_hit(const Scene& scene, Vec3 origin, Vec3 dir) {
  std::optional<Hit> best;
  for (const auto& s : scene.spheres) {
    auto h = intersect_sphere(s, origin, dir);
    if (h && (!best || h->t < best->t)) best = h;
  }
  auto f = intersect_floor(scene, origin, dir);
  if (f && (!best || f->t < best->t)) best = f;
  return best;
}

bool in_shadow(const Scene& scene, Vec3 point, Vec3 to_light,
               double light_dist) {
  for (const auto& s : scene.spheres) {
    auto h = intersect_sphere(s, point, to_light);
    if (h && h->t < light_dist) return true;
  }
  return false;
}

Vec3 trace(const Scene& scene, Vec3 origin, Vec3 dir, int depth) {
  const auto hit = closest_hit(scene, origin, dir);
  if (!hit) return scene.background;

  const Vec3 to_light_vec = scene.light - hit->point;
  const double light_dist = to_light_vec.norm();
  const Vec3 to_light = to_light_vec.normalized();

  // Phong: ambient + diffuse + specular, with hard shadows.
  double diffuse = std::max(0.0, hit->normal.dot(to_light));
  double specular = 0.0;
  if (in_shadow(scene, hit->point + hit->normal * 1e-4, to_light,
                light_dist)) {
    diffuse = 0.0;
  } else {
    const Vec3 reflect_l =
        hit->normal * (2.0 * hit->normal.dot(to_light)) - to_light;
    specular = std::pow(std::max(0.0, reflect_l.dot(dir * -1.0)), 32.0);
  }
  Vec3 color = hit->color * (0.15 + 0.75 * diffuse) +
               Vec3{1, 1, 1} * (0.6 * specular);

  if (depth > 0 && hit->reflectivity > 0.0) {
    const Vec3 rdir =
        (dir - hit->normal * (2.0 * dir.dot(hit->normal))).normalized();
    const Vec3 rcol =
        trace(scene, hit->point + hit->normal * 1e-4, rdir, depth - 1);
    color = color * (1.0 - hit->reflectivity) + rcol * hit->reflectivity;
  }
  return color;
}

}  // namespace

Image render(const Scene& scene, int width, int height, int max_depth) {
  PT_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) * height);
  const double aspect = static_cast<double>(width) / height;
  const double fov_scale = std::tan(0.5 * 60.0 * M_PI / 180.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double px =
          (2.0 * (x + 0.5) / width - 1.0) * aspect * fov_scale;
      const double py = (1.0 - 2.0 * (y + 0.5) / height) * fov_scale;
      const Vec3 dir = Vec3{px, py, -1.0}.normalized();
      img.at(x, y) = trace(scene, {0, 0, 0}, dir, max_depth);
    }
  }
  return img;
}

// ---------------------------------------------------------------------
// Flag space and simulated evaluator.
// ---------------------------------------------------------------------

namespace {
constexpr int kNumFlags = 143;
constexpr int kNumParams = 104;
/// Flags with real (portable) effect and their base speedup factor when
/// enabled. Indices are spread over the flag range.
struct ImpactfulFlag {
  int index;
  double factor;  // < 1 is a speedup
};
constexpr ImpactfulFlag kImpactful[] = {
    {2, 0.90},   // -finline-functions
    {7, 0.93},   // -funroll-loops
    {11, 0.95},  // -ftree-vectorize
    {17, 0.96},  // -ffast-math style relaxation
    {23, 0.97},  // -fomit-frame-pointer
    {31, 0.97},  // -fstrict-aliasing
    {41, 0.98},  // -fschedule-insns2
    {53, 0.985}, // -fipa-cp
    {67, 0.99},  // -fgcse-las
    {79, 1.04},  // -fno-guess-branch-probability (harmful)
    {97, 1.03},  // -flive-range-shrinkage (harmful on wide OoO)
    {113, 0.99}, // -fira-hoist-pressure
};
/// Valued parameters with a real optimum (param index within 0..103).
constexpr int kImpactfulParams[] = {0, 3, 9, 17, 28, 41, 57, 76, 90};
}  // namespace

tuner::ParamSpace raytracer_flag_space() {
  tuner::ParamSpace s;
  for (int f = 0; f < kNumFlags; ++f)
    s.add("F" + std::to_string(f), tuner::flag_values());
  for (int p = 0; p < kNumParams; ++p)
    s.add("P" + std::to_string(p), {0, 1, 2, 3});  // e.g. --param levels
  PT_ASSERT(s.num_params() == kNumFlags + kNumParams);
  return s;
}

SimulatedRaytracerEvaluator::SimulatedRaytracerEvaluator(
    sim::MachineDescriptor machine, double noise_sigma)
    : space_(raytracer_flag_space()),
      machine_(std::move(machine)),
      noise_sigma_(noise_sigma) {}

tuner::EvalResult SimulatedRaytracerEvaluator::evaluate(
    const tuner::ParamConfig& config) {
  space_.validate(config);
  const std::uint64_t machine_key = hash_bytes(machine_.name);
  const std::uint64_t vendor_key = hash_bytes(machine_.vendor);

  // Machine base time: scalar FP bound (ray tracing branches too much to
  // vectorize), so clock x issue width dominates.
  double seconds = 2.0e11 / (machine_.clock_ghz * 1e9 *
                             machine_.scalar_flops_per_cycle *
                             machine_.issue_width / 2.0);

  // Boolean flags.
  for (int f = 0; f < kNumFlags; ++f) {
    if (config[static_cast<std::size_t>(f)] == 0) continue;
    double factor = 1.0;
    for (const auto& imp : kImpactful)
      if (imp.index == f) factor = imp.factor;
    // Modulation around the portable effect: mostly shared within a
    // vendor's microarchitecture family (the paper's WM<->SB RT transfer
    // works; cross-vendor is weaker), plus a small per-machine residue.
    const std::uint64_t vkey =
        hash_combine(vendor_key, 0x46000000ULL + static_cast<std::uint64_t>(f));
    const std::uint64_t mkey =
        hash_combine(machine_key, 0x46000000ULL + static_cast<std::uint64_t>(f));
    const double u = 0.7 * (hash_to_unit(mix64(vkey)) - 0.5) +
                     0.3 * (hash_to_unit(mix64(mkey)) - 0.5);
    factor *= (factor != 1.0) ? (1.0 + 0.08 * u) : (1.0 + 0.012 * u);
    seconds *= factor;
  }

  // Valued parameters: impactful ones have a per-machine optimum level;
  // the rest are near-neutral jitter.
  for (int p = 0; p < kNumParams; ++p) {
    const int level = config[static_cast<std::size_t>(kNumFlags + p)];
    bool impactful = false;
    for (int ip : kImpactfulParams) impactful |= (ip == p);
    const std::uint64_t key =
        hash_combine(machine_key, 0x50000000ULL + static_cast<std::uint64_t>(p));
    if (impactful) {
      const int opt = static_cast<int>(mix64(key) % 4);
      seconds *= 1.0 + 0.012 * std::abs(level - opt);
    } else {
      const double u =
          hash_to_unit(mix64(hash_combine(key, static_cast<std::uint64_t>(level)))) - 0.5;
      seconds *= 1.0 + 0.004 * u;
    }
  }

  const std::uint64_t noise = sim::noise_key(
      machine_.name, "RT", space_.config_hash(config), 0);
  seconds *= sim::noise_factor(noise, noise_sigma_);
  return {seconds, true, {}};
}

}  // namespace portatune::apps
