// Centralized evaluator-stack wiring.
//
// Every driver (portatune_cli, quickstart, the bench_* binaries) used to
// hand-assemble the same decorator chain — backend, fault injection,
// observation, retry/timeout, parallel fan-out — with the same ordering
// constraints. EvaluatorStack captures that chain once, declaratively:
//
//     backend -> FaultInjecting -> Observed -> Resilient -> Parallel
//
// (each layer materialized only when requested; see parallel.hpp for why
// the parallel layer must be outermost). The stack is itself an
// Evaluator, so it drops into searches, run_transfer_experiment, and
// ExperimentJob factories directly, and find_layer<> locates any layer
// through the forwarding chain.
#pragma once

#include <memory>
#include <string>

#include "obs/observed_evaluator.hpp"
#include "sim/machine.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/faults.hpp"
#include "tuner/guard.hpp"
#include "tuner/parallel.hpp"
#include "tuner/resilience.hpp"

namespace portatune::apps {

/// Declarative description of one evaluator decorator stack.
///
/// Legacy note: drivers should prefer building this through
/// apps::TuningConfig::stack_options() (apps/tuning_config.hpp), which
/// validates the whole run configuration and keeps the stack consistent
/// with the search options produced from the same builder.
struct EvaluatorStackOptions {
  // Backend (see registry.hpp for the accepted names).
  std::string problem = "LU";
  std::string machine = "Westmere";
  sim::Compiler compiler = sim::Compiler::Gnu;
  int kernel_threads = 1;  ///< simulated OpenMP threads inside the kernel

  /// Fault-injection layer; materialized when any rate is non-zero.
  tuner::FaultProfile faults{};

  /// Observation layer (per-attempt metrics + events).
  bool observe = false;
  std::string observe_label = "eval";

  /// Resilience layer (retry / timeout / quarantine).
  bool resilient = false;
  tuner::RetryPolicy retry{};

  /// Parallel fan-out; materialized when eval_threads != 1
  /// (0 = hardware concurrency, exactly as ParallelOptions::threads).
  std::size_t eval_threads = 1;
  std::size_t batch_width = 0;  ///< 0 = ParallelEvaluator's default
  /// Cooperative cancellation + per-evaluation watchdog deadline, wired
  /// into the parallel layer (see ParallelOptions).
  CancellationToken cancel{};
  double eval_deadline_seconds = 0.0;

  /// Surrogate-trust guard settings to thread into the searches run
  /// against this stack (tuner/guard.hpp). Not a decorator layer — the
  /// guard lives inside RS_p / RS_b — but carried here so drivers
  /// configure the whole run (stack + search behavior) in one place;
  /// read it back via guard_options().
  tuner::GuardOptions guard{};
};

/// Owns a fully wired decorator stack and forwards the Evaluator interface
/// to its outermost layer.
class EvaluatorStack final : public tuner::Evaluator {
 public:
  explicit EvaluatorStack(const EvaluatorStackOptions& opt);

  const tuner::ParamSpace& space() const override { return top_->space(); }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override {
    return top_->evaluate(config);
  }
  std::vector<tuner::EvalResult> evaluate_batch(
      std::span<const tuner::ParamConfig> batch) override {
    return top_->evaluate_batch(batch);
  }
  tuner::EvalCapabilities capabilities() const override {
    return top_->capabilities();
  }
  tuner::Evaluator* inner_evaluator() noexcept override { return top_; }
  std::string problem_name() const override { return top_->problem_name(); }
  std::string machine_name() const override { return top_->machine_name(); }

  /// Layer accessors; null when the layer was not requested.
  tuner::FaultInjectingEvaluator* fault_layer() noexcept {
    return faults_.get();
  }
  obs::ObservedEvaluator* observed_layer() noexcept { return observed_.get(); }
  tuner::ResilientEvaluator* resilient_layer() noexcept {
    return resilient_.get();
  }
  tuner::ParallelEvaluator* parallel_layer() noexcept {
    return parallel_.get();
  }
  tuner::Evaluator& backend() noexcept { return *backend_; }

  /// Guard settings carried by this stack (see EvaluatorStackOptions).
  const tuner::GuardOptions& guard_options() const noexcept {
    return guard_;
  }

 private:
  tuner::GuardOptions guard_;
  tuner::EvaluatorPtr backend_;
  std::unique_ptr<tuner::FaultInjectingEvaluator> faults_;
  std::unique_ptr<obs::ObservedEvaluator> observed_;
  std::unique_ptr<tuner::ResilientEvaluator> resilient_;
  std::unique_ptr<tuner::ParallelEvaluator> parallel_;
  tuner::Evaluator* top_ = nullptr;  ///< outermost materialized layer
};

/// Convenience factory; the result is an EvaluatorPtr-compatible owner of
/// the whole stack (handy inside tuner::ExperimentJob factories).
std::unique_ptr<EvaluatorStack> make_evaluator_stack(
    const EvaluatorStackOptions& opt);

}  // namespace portatune::apps
