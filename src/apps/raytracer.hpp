// Raytracer mini-app (paper Sec. IV-C: "RT").
//
// Two halves:
//   * a real, small Whitted-style ray tracer (spheres + plane, Phong
//     shading, reflections) used by the native example and tests;
//   * the compiler-flag tuning space — 143 boolean g++ flags and 104
//     valued parameters, as in the paper — with a simulated cross-machine
//     effect model. A handful of flags carry real, mostly portable
//     speedups (inlining, unrolling, vectorization, math relaxation),
//     each modulated per machine; the long tail is near-neutral with
//     machine-keyed jitter; a few flags are actively harmful on specific
//     machines. Valued parameters act through machine-dependent optima.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::apps {

/// ---------------------------------------------------------------------
/// Real renderer half.
/// ---------------------------------------------------------------------

struct Vec3 {
  double x = 0, y = 0, z = 0;
  Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 mul(Vec3 o) const { return {x * o.x, y * o.y, z * o.z}; }
  double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const;
  Vec3 normalized() const;
};

struct Sphere {
  Vec3 center;
  double radius = 1.0;
  Vec3 color{1, 1, 1};
  double reflectivity = 0.0;
};

struct Scene {
  std::vector<Sphere> spheres;
  Vec3 light{-10, 10, -5};
  Vec3 background{0.1, 0.1, 0.15};
  double floor_y = -2.0;  ///< checkerboard ground plane
};

struct Image {
  int width = 0, height = 0;
  std::vector<Vec3> pixels;  // row-major

  Vec3& at(int x, int y) { return pixels[static_cast<std::size_t>(y) * width + x]; }
  const Vec3& at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  /// Serialize as binary PPM (P6).
  std::vector<unsigned char> to_ppm() const;
};

/// The default demo scene (deterministic).
Scene demo_scene();

/// Render the scene; max_depth bounds reflection recursion.
Image render(const Scene& scene, int width, int height, int max_depth = 3);

/// ---------------------------------------------------------------------
/// Flag-tuning half.
/// ---------------------------------------------------------------------

/// 143 boolean flags + 104 valued parameters = 247 tunables.
tuner::ParamSpace raytracer_flag_space();

class SimulatedRaytracerEvaluator final : public tuner::Evaluator {
 public:
  explicit SimulatedRaytracerEvaluator(sim::MachineDescriptor machine,
                                       double noise_sigma = 0.03);

  const tuner::ParamSpace& space() const override { return space_; }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  /// Thread-safe: evaluate() is a pure function of (machine, config) —
  /// noise is hashed, never drawn from mutable generator state.
  tuner::EvalCapabilities capabilities() const override {
    return {.thread_safe = true, .preferred_batch = 1};
  }
  std::string problem_name() const override { return "RT"; }
  std::string machine_name() const override { return machine_.name; }

 private:
  tuner::ParamSpace space_;
  sim::MachineDescriptor machine_;
  double noise_sigma_;
};

}  // namespace portatune::apps
