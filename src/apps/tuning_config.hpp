// TuningConfig: one validated builder for a whole tuning run.
//
// Five option structs accumulated over the project's life — SearchCommon,
// ExperimentSettings, EvaluatorStackOptions, GuardOptions,
// ParallelOptions — and every driver wired them together by hand, each
// repeating the same defaults and the same cross-struct invariants (the
// CRN seed must be shared, the cancel token must reach both the stack and
// the search, the guard's forest must match the experiment's). This
// builder is the single composition point: drivers describe the run once,
// fluently, and produce whichever legacy struct each subsystem still
// consumes. The legacy structs remain as plain aggregates (designated
// initialization at existing call sites keeps compiling) but are
// construction targets now, not the API — new code goes through here.
//
//     auto cfg = apps::TuningConfig{}
//                    .problem("LU").machines("Westmere", "Sandybridge")
//                    .max_evals(200).seed(7).eval_threads(4);
//     auto source = cfg.make_stack(apps::StackRole::Source);
//     auto target = cfg.make_stack(apps::StackRole::Target);
//     auto result = tuner::run_transfer_experiment(*source, *target,
//                                                  cfg.experiment_settings());
//
// Every producer validates first, so an impossible configuration fails
// loudly at build time instead of deep inside a search.
#pragma once

#include <memory>
#include <string>

#include "apps/evaluator_factory.hpp"
#include "tuner/experiment.hpp"
#include "tuner/parallel.hpp"
#include "tuner/session.hpp"

namespace portatune::apps {

/// Which evaluator stack of a run a producer builds. Single is a
/// one-machine run (collect / a plain session); Source/Target are the
/// two sides of a transfer and get role-tagged observation labels.
enum class StackRole { Single, Source, Target };

class TuningConfig {
 public:
  // -- Backend ----------------------------------------------------------
  TuningConfig& problem(std::string name);
  /// The machine of Single/Target stacks.
  TuningConfig& machine(std::string name);
  /// The machine of Source stacks (transfers).
  TuningConfig& source_machine(std::string name);
  /// Both transfer sides at once.
  TuningConfig& machines(std::string source, std::string target);
  TuningConfig& compiler(sim::Compiler c);
  TuningConfig& kernel_threads(int n);

  // -- Search -----------------------------------------------------------
  TuningConfig& max_evals(std::size_t n);
  TuningConfig& seed(std::uint64_t s);
  TuningConfig& pool_size(std::size_t n);
  TuningConfig& delta_percent(double d);
  TuningConfig& forest(ml::ForestParams fp);
  TuningConfig& failure_budget(tuner::FailureBudget fb);
  TuningConfig& guard(tuner::GuardOptions g);
  /// Shorthand for the CLI's --guard/--guard-floor/--guard-window trio.
  TuningConfig& guard_enabled(bool on);
  TuningConfig& guard_floor(double floor);
  TuningConfig& guard_window(std::size_t window);
  TuningConfig& cancel(CancellationToken token);

  // -- Evaluator stack layers ------------------------------------------
  TuningConfig& faults(tuner::FaultProfile profile);
  TuningConfig& observe(bool on);
  TuningConfig& observe_label(std::string label);
  TuningConfig& resilient(bool on);
  TuningConfig& retry(tuner::RetryPolicy policy);
  TuningConfig& eval_threads(std::size_t n);
  TuningConfig& batch_width(std::size_t n);
  TuningConfig& eval_deadline_seconds(double s);

  // -- Introspection (CLI summaries, service status) --------------------
  const std::string& problem() const noexcept { return problem_; }
  const std::string& machine() const noexcept { return machine_; }
  const std::string& source_machine() const noexcept {
    return source_machine_;
  }
  std::size_t max_evals() const noexcept { return max_evals_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::size_t eval_threads() const noexcept { return eval_threads_; }
  std::size_t pool_size() const noexcept { return pool_size_; }
  int kernel_threads() const noexcept { return kernel_threads_; }
  sim::Compiler compiler() const noexcept { return compiler_; }
  double delta_percent() const noexcept { return delta_percent_; }
  const ml::ForestParams& forest() const noexcept { return forest_; }
  const tuner::FailureBudget& failure_budget() const noexcept {
    return failure_budget_;
  }
  const tuner::GuardOptions& guard() const noexcept { return guard_; }
  const tuner::FaultProfile& faults() const noexcept { return faults_; }
  bool observe() const noexcept { return observe_; }
  const std::string& observe_label() const noexcept { return observe_label_; }
  bool resilient() const noexcept { return resilient_; }
  const tuner::RetryPolicy& retry() const noexcept { return retry_; }
  std::size_t batch_width() const noexcept { return batch_width_; }
  double eval_deadline_seconds() const noexcept { return eval_deadline_; }

  /// Check the cross-field invariants; throws portatune::Error with the
  /// offending field named. Every producer below calls this first.
  const TuningConfig& validate() const;

  // -- Producers: the legacy structs, assembled consistently ------------
  tuner::SearchCommon search_common() const;
  tuner::GuardOptions guard_options() const;
  tuner::ExperimentSettings experiment_settings() const;
  tuner::ParallelOptions parallel_options() const;
  tuner::SessionOptions session_options(std::string id) const;
  EvaluatorStackOptions stack_options(StackRole role = StackRole::Single)
      const;
  std::unique_ptr<EvaluatorStack> make_stack(
      StackRole role = StackRole::Single) const;

 private:
  std::string problem_ = "LU";
  std::string machine_ = "Westmere";
  std::string source_machine_ = "Westmere";
  sim::Compiler compiler_ = sim::Compiler::Gnu;
  int kernel_threads_ = 1;

  std::size_t max_evals_ = 100;
  std::uint64_t seed_ = 20160401;  ///< the shared CRN seed (Sec. IV-D)
  std::size_t pool_size_ = 10000;
  double delta_percent_ = 20.0;
  ml::ForestParams forest_{};
  tuner::FailureBudget failure_budget_{};
  tuner::GuardOptions guard_{};
  CancellationToken cancel_{};

  tuner::FaultProfile faults_{};
  bool observe_ = false;
  std::string observe_label_;  ///< empty = role-derived default
  bool resilient_ = false;
  tuner::RetryPolicy retry_{};
  std::size_t eval_threads_ = 1;
  std::size_t batch_width_ = 0;
  double eval_deadline_ = 0.0;
};

}  // namespace portatune::apps
