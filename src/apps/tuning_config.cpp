#include "apps/tuning_config.hpp"

#include "support/error.hpp"

namespace portatune::apps {

TuningConfig& TuningConfig::problem(std::string name) {
  problem_ = std::move(name);
  return *this;
}
TuningConfig& TuningConfig::machine(std::string name) {
  machine_ = std::move(name);
  return *this;
}
TuningConfig& TuningConfig::source_machine(std::string name) {
  source_machine_ = std::move(name);
  return *this;
}
TuningConfig& TuningConfig::machines(std::string source, std::string target) {
  source_machine_ = std::move(source);
  machine_ = std::move(target);
  return *this;
}
TuningConfig& TuningConfig::compiler(sim::Compiler c) {
  compiler_ = c;
  return *this;
}
TuningConfig& TuningConfig::kernel_threads(int n) {
  kernel_threads_ = n;
  return *this;
}
TuningConfig& TuningConfig::max_evals(std::size_t n) {
  max_evals_ = n;
  return *this;
}
TuningConfig& TuningConfig::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}
TuningConfig& TuningConfig::pool_size(std::size_t n) {
  pool_size_ = n;
  return *this;
}
TuningConfig& TuningConfig::delta_percent(double d) {
  delta_percent_ = d;
  return *this;
}
TuningConfig& TuningConfig::forest(ml::ForestParams fp) {
  forest_ = fp;
  return *this;
}
TuningConfig& TuningConfig::failure_budget(tuner::FailureBudget fb) {
  failure_budget_ = fb;
  return *this;
}
TuningConfig& TuningConfig::guard(tuner::GuardOptions g) {
  guard_ = std::move(g);
  return *this;
}
TuningConfig& TuningConfig::guard_enabled(bool on) {
  guard_.enabled = on;
  return *this;
}
TuningConfig& TuningConfig::guard_floor(double floor) {
  guard_.floor = floor;
  return *this;
}
TuningConfig& TuningConfig::guard_window(std::size_t window) {
  guard_.window = window;
  return *this;
}
TuningConfig& TuningConfig::cancel(CancellationToken token) {
  cancel_ = std::move(token);
  return *this;
}
TuningConfig& TuningConfig::faults(tuner::FaultProfile profile) {
  faults_ = profile;
  return *this;
}
TuningConfig& TuningConfig::observe(bool on) {
  observe_ = on;
  return *this;
}
TuningConfig& TuningConfig::observe_label(std::string label) {
  observe_label_ = std::move(label);
  return *this;
}
TuningConfig& TuningConfig::resilient(bool on) {
  resilient_ = on;
  return *this;
}
TuningConfig& TuningConfig::retry(tuner::RetryPolicy policy) {
  retry_ = policy;
  return *this;
}
TuningConfig& TuningConfig::eval_threads(std::size_t n) {
  eval_threads_ = n;
  return *this;
}
TuningConfig& TuningConfig::batch_width(std::size_t n) {
  batch_width_ = n;
  return *this;
}
TuningConfig& TuningConfig::eval_deadline_seconds(double s) {
  eval_deadline_ = s;
  return *this;
}

const TuningConfig& TuningConfig::validate() const {
  PT_REQUIRE(!problem_.empty(), "TuningConfig: problem must be named");
  PT_REQUIRE(!machine_.empty(), "TuningConfig: machine must be named");
  PT_REQUIRE(max_evals_ > 0, "TuningConfig: max_evals must be positive");
  PT_REQUIRE(pool_size_ > 0, "TuningConfig: pool_size must be positive");
  PT_REQUIRE(delta_percent_ > 0.0 && delta_percent_ < 100.0,
             "TuningConfig: delta_percent must lie strictly between 0 "
             "and 100");
  PT_REQUIRE(kernel_threads_ >= 1,
             "TuningConfig: kernel_threads must be >= 1");
  PT_REQUIRE(retry_.max_attempts >= 1,
             "TuningConfig: retry.max_attempts must be >= 1");
  PT_REQUIRE(eval_deadline_ >= 0.0,
             "TuningConfig: eval_deadline_seconds must be >= 0");
  PT_REQUIRE(failure_budget_.max_consecutive > 0 &&
                 failure_budget_.max_total > 0,
             "TuningConfig: failure budget bounds must be positive");
  if (guard_.enabled) {
    PT_REQUIRE(guard_.floor >= guard_.disable_floor,
               "TuningConfig: guard floor must be >= disable_floor");
    PT_REQUIRE(guard_.window >= guard_.min_observations,
               "TuningConfig: guard window must hold min_observations");
    PT_REQUIRE(guard_.sync_window > 0,
               "TuningConfig: guard sync_window must be positive");
  }
  return *this;
}

tuner::SearchCommon TuningConfig::search_common() const {
  validate();
  tuner::SearchCommon c;
  c.max_evals = max_evals_;
  c.seed = seed_;
  c.failure_budget = failure_budget_;
  c.guard = guard_;
  c.cancel = cancel_;
  return c;
}

tuner::GuardOptions TuningConfig::guard_options() const {
  validate();
  return guard_;
}

tuner::ExperimentSettings TuningConfig::experiment_settings() const {
  validate();
  tuner::ExperimentSettings s;
  s.nmax = max_evals_;
  s.pool_size = pool_size_;
  s.delta_percent = delta_percent_;
  s.seed = seed_;
  s.forest = forest_;
  s.failure_budget = failure_budget_;
  s.guard = guard_;
  s.cancel = cancel_;
  return s;
}

tuner::ParallelOptions TuningConfig::parallel_options() const {
  validate();
  tuner::ParallelOptions p;
  p.threads = eval_threads_;
  p.batch_width = batch_width_;
  p.cancel = cancel_;
  p.eval_deadline_seconds = eval_deadline_;
  return p;
}

tuner::SessionOptions TuningConfig::session_options(std::string id) const {
  validate();
  tuner::SessionOptions o;
  o.max_evals = max_evals_;
  o.seed = seed_;
  o.failure_budget = failure_budget_;
  o.guard = guard_;
  o.cancel = cancel_;
  o.id = std::move(id);
  o.pool_size = pool_size_;
  return o;
}

EvaluatorStackOptions TuningConfig::stack_options(StackRole role) const {
  validate();
  EvaluatorStackOptions so;
  so.problem = problem_;
  so.machine = role == StackRole::Source ? source_machine_ : machine_;
  so.compiler = compiler_;
  so.kernel_threads = kernel_threads_;
  so.faults = faults_;
  so.observe = observe_;
  if (!observe_label_.empty()) {
    so.observe_label = observe_label_;
  } else {
    switch (role) {
      case StackRole::Single: so.observe_label = "eval"; break;
      case StackRole::Source: so.observe_label = "eval.source"; break;
      case StackRole::Target: so.observe_label = "eval.target"; break;
    }
  }
  so.resilient = resilient_;
  so.retry = retry_;
  so.eval_threads = eval_threads_;
  so.batch_width = batch_width_;
  so.cancel = cancel_;
  so.eval_deadline_seconds = eval_deadline_;
  so.guard = guard_;
  return so;
}

std::unique_ptr<EvaluatorStack> TuningConfig::make_stack(
    StackRole role) const {
  return make_evaluator_stack(stack_options(role));
}

}  // namespace portatune::apps
